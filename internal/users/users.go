// Package users implements the iTag User Manager (paper §III, Fig. 2).
//
// It tracks the two-sided approval process of §III-A: providers approve or
// reject taggers' posts (yielding a tagger approval rate), and taggers rate
// providers for reliable, timely payment (yielding a provider approval
// rate). The rates gate participation: taggers who consistently produce
// low-quality tags fall below the qualification threshold and stop
// receiving tasks; providers who withhold approvals lose taggers.
package users

import (
	"fmt"
	"sort"
	"sync"
)

// Stat is the public view of one user's approval record.
type Stat struct {
	ID       string
	Judged   int
	Approved int
	Earned   float64
}

// Rate returns the approval rate; users with no judgments yet get 1
// (benefit of the doubt, as crowd platforms grant new workers).
func (s Stat) Rate() float64 {
	if s.Judged == 0 {
		return 1
	}
	return float64(s.Approved) / float64(s.Judged)
}

type stats struct {
	judged   int
	approved int
	earned   float64
}

// Manager tracks approval statistics for taggers and providers.
// It is safe for concurrent use.
type Manager struct {
	mu        sync.RWMutex
	taggers   map[string]*stats
	providers map[string]*stats
}

// NewManager returns an empty Manager.
func NewManager() *Manager {
	return &Manager{
		taggers:   make(map[string]*stats),
		providers: make(map[string]*stats),
	}
}

// RegisterTagger ensures a tagger exists (idempotent).
func (m *Manager) RegisterTagger(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.taggers[id]; !ok {
		m.taggers[id] = &stats{}
	}
}

// RegisterProvider ensures a provider exists (idempotent).
func (m *Manager) RegisterProvider(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.providers[id]; !ok {
		m.providers[id] = &stats{}
	}
}

// KnownTagger reports whether the tagger is registered.
func (m *Manager) KnownTagger(id string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.taggers[id]
	return ok
}

// RecordTagJudgment records a provider's verdict on one of the tagger's
// posts; on approval the reward is credited (the Quality Manager "offers
// the unit of incentive to taggers once a tag has been approved", §III-B).
func (m *Manager) RecordTagJudgment(taggerID string, approved bool, reward float64) error {
	if reward < 0 {
		return fmt.Errorf("users: negative reward %v", reward)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.taggers[taggerID]
	if !ok {
		s = &stats{}
		m.taggers[taggerID] = s
	}
	s.judged++
	if approved {
		s.approved++
		s.earned += reward
	}
	return nil
}

// RecordProviderRating records a tagger's verdict on a provider.
func (m *Manager) RecordProviderRating(providerID string, positive bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.providers[providerID]
	if !ok {
		s = &stats{}
		m.providers[providerID] = s
	}
	s.judged++
	if positive {
		s.approved++
	}
}

// TaggerApprovalRate returns the tagger's approval rate (1 if unknown or
// unjudged).
func (m *Manager) TaggerApprovalRate(id string) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return rate(m.taggers[id])
}

// ProviderApprovalRate returns the provider's approval rate (1 if unknown
// or unrated).
func (m *Manager) ProviderApprovalRate(id string) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return rate(m.providers[id])
}

func rate(s *stats) float64 {
	if s == nil || s.judged == 0 {
		return 1
	}
	return float64(s.approved) / float64(s.judged)
}

// TaggerEarnings returns the total incentives credited to a tagger.
func (m *Manager) TaggerEarnings(id string) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if s := m.taggers[id]; s != nil {
		return s.earned
	}
	return 0
}

// Qualified reports whether a tagger meets the qualification gate: at least
// minRate approval once they have minJudged or more judgments. Taggers with
// fewer judgments are qualified (they have not had a fair chance yet).
func (m *Manager) Qualified(taggerID string, minRate float64, minJudged int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := m.taggers[taggerID]
	if s == nil || s.judged < minJudged {
		return true
	}
	return rate(s) >= minRate
}

// QualifiedTaggers returns the IDs of registered taggers passing the gate,
// sorted.
func (m *Manager) QualifiedTaggers(minRate float64, minJudged int) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for id, s := range m.taggers {
		if s.judged < minJudged || rate(s) >= minRate {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// TaggerStats returns a snapshot of all tagger stats, sorted by ID.
func (m *Manager) TaggerStats() []Stat {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return snapshot(m.taggers)
}

// ProviderStats returns a snapshot of all provider stats, sorted by ID.
func (m *Manager) ProviderStats() []Stat {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return snapshot(m.providers)
}

func snapshot(set map[string]*stats) []Stat {
	out := make([]Stat, 0, len(set))
	for id, s := range set {
		out = append(out, Stat{ID: id, Judged: s.judged, Approved: s.approved, Earned: s.earned})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
