package users

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestNewUsersHaveFullRate(t *testing.T) {
	m := NewManager()
	m.RegisterTagger("t1")
	m.RegisterProvider("p1")
	if got := m.TaggerApprovalRate("t1"); got != 1 {
		t.Errorf("new tagger rate = %v", got)
	}
	if got := m.ProviderApprovalRate("p1"); got != 1 {
		t.Errorf("new provider rate = %v", got)
	}
	// Unknown users also default to 1 (no evidence against them).
	if got := m.TaggerApprovalRate("stranger"); got != 1 {
		t.Errorf("unknown tagger rate = %v", got)
	}
	if !m.KnownTagger("t1") || m.KnownTagger("stranger") {
		t.Error("KnownTagger wrong")
	}
}

func TestRecordTagJudgment(t *testing.T) {
	m := NewManager()
	for i := 0; i < 7; i++ {
		if err := m.RecordTagJudgment("t1", true, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := m.RecordTagJudgment("t1", false, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.TaggerApprovalRate("t1"); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("rate = %v, want 0.7", got)
	}
	if got := m.TaggerEarnings("t1"); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("earnings = %v, want 0.35 (only approved posts pay)", got)
	}
	if err := m.RecordTagJudgment("t1", true, -1); err == nil {
		t.Error("negative reward must be rejected")
	}
	if m.TaggerEarnings("nobody") != 0 {
		t.Error("unknown tagger earnings must be 0")
	}
}

func TestRecordProviderRating(t *testing.T) {
	m := NewManager()
	m.RecordProviderRating("p1", true)
	m.RecordProviderRating("p1", true)
	m.RecordProviderRating("p1", false)
	if got := m.ProviderApprovalRate("p1"); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("provider rate = %v", got)
	}
}

func TestQualification(t *testing.T) {
	m := NewManager()
	// Below minJudged: always qualified regardless of rate.
	m.RecordTagJudgment("rookie", false, 0)
	if !m.Qualified("rookie", 0.9, 5) {
		t.Error("rookie with 1 judgment must still qualify")
	}
	// Enough judgments, bad rate: disqualified.
	for i := 0; i < 10; i++ {
		_ = m.RecordTagJudgment("bad", i < 2, 0)
	}
	if m.Qualified("bad", 0.5, 5) {
		t.Error("bad tagger must be disqualified")
	}
	// Enough judgments, good rate: qualified.
	for i := 0; i < 10; i++ {
		_ = m.RecordTagJudgment("good", i > 0, 0)
	}
	if !m.Qualified("good", 0.5, 5) {
		t.Error("good tagger must qualify")
	}
	// Unknown taggers qualify.
	if !m.Qualified("stranger", 0.99, 1) {
		t.Error("unknown tagger must qualify")
	}
}

func TestQualifiedTaggersSorted(t *testing.T) {
	m := NewManager()
	m.RegisterTagger("zeta")
	m.RegisterTagger("alpha")
	for i := 0; i < 10; i++ {
		_ = m.RecordTagJudgment("mid", false, 0)
	}
	got := m.QualifiedTaggers(0.5, 5)
	if !reflect.DeepEqual(got, []string{"alpha", "zeta"}) {
		t.Errorf("qualified = %v", got)
	}
}

func TestStatsSnapshots(t *testing.T) {
	m := NewManager()
	_ = m.RecordTagJudgment("t1", true, 0.10)
	m.RecordProviderRating("p1", false)
	ts := m.TaggerStats()
	if len(ts) != 1 || ts[0].ID != "t1" || ts[0].Approved != 1 || ts[0].Earned != 0.10 {
		t.Errorf("tagger stats = %+v", ts)
	}
	if ts[0].Rate() != 1 {
		t.Errorf("rate = %v", ts[0].Rate())
	}
	ps := m.ProviderStats()
	if len(ps) != 1 || ps[0].Rate() != 0 {
		t.Errorf("provider stats = %+v", ps)
	}
	if (Stat{}).Rate() != 1 {
		t.Error("empty stat rate must be 1")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	m := NewManager()
	_ = m.RecordTagJudgment("t1", true, 0.5)
	m.RegisterTagger("t1") // must not reset stats
	if m.TaggerEarnings("t1") != 0.5 {
		t.Error("re-registering reset stats")
	}
}

func TestConcurrentJudgments(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = m.RecordTagJudgment("t1", true, 0.01)
				_ = m.TaggerApprovalRate("t1")
				m.RecordProviderRating("p1", i%2 == 0)
			}
		}()
	}
	wg.Wait()
	st := m.TaggerStats()
	if st[0].Judged != 4000 {
		t.Errorf("judged = %d, want 4000", st[0].Judged)
	}
	if math.Abs(m.TaggerEarnings("t1")-40.0) > 1e-6 {
		t.Errorf("earnings = %v, want 40", m.TaggerEarnings("t1"))
	}
}
