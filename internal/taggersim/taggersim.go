// Package taggersim simulates tagger behaviour: who taggers are, which
// resources they choose when free, and what posts they produce.
//
// Paper §I attributes low tagging quality to exactly two defects of casual
// taggers — posts are *noisy* (typos, irrelevant tags) and *incomplete*
// (cover few aspects) — plus free choice concentrating posts on popular
// resources [5]. Each defect is a tunable parameter here:
//
//   - Reliability: probability a tag is drawn from the resource's latent
//     distribution rather than the noise model.
//   - TypoRate: within noise, probability of misspelling a latent tag
//     versus emitting an unrelated tag.
//   - MeanTags: posts carry few tags (incompleteness of a single post).
//   - AspectBias: temperature on the latent distribution; >1 concentrates
//     posts on head aspects, leaving tail aspects under-described.
//
// The package also generates timestamped traces (for the dataset replay
// protocol of §IV) and provides the post-production callback consumed by
// the crowd platform simulator.
package taggersim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"itag/internal/dataset"
	"itag/internal/rfd"
	"itag/internal/rng"
	"itag/internal/vocab"
)

// Profile describes one simulated tagger.
type Profile struct {
	// ID is the tagger identifier.
	ID string
	// Reliability is the probability each tag comes from the latent
	// distribution (honesty); the rest is noise.
	Reliability float64
	// TypoRate is, within the noise fraction, the probability of a typo of
	// a latent tag rather than an unrelated random tag.
	TypoRate float64
	// MeanTags is the mean number of tags per post (>= 1 effective).
	MeanTags float64
	// AspectBias is the temperature applied to latent weights when
	// sampling (1 = faithful; >1 = head-heavy, more incomplete coverage).
	AspectBias float64
	// Activity is the tagger's relative activity weight in the population.
	Activity float64
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	if p.ID == "" {
		return fmt.Errorf("taggersim: profile ID empty")
	}
	if p.Reliability < 0 || p.Reliability > 1 {
		return fmt.Errorf("taggersim: reliability %v outside [0,1]", p.Reliability)
	}
	if p.TypoRate < 0 || p.TypoRate > 1 {
		return fmt.Errorf("taggersim: typo rate %v outside [0,1]", p.TypoRate)
	}
	if p.MeanTags <= 0 {
		return fmt.Errorf("taggersim: mean tags must be positive, got %v", p.MeanTags)
	}
	if p.AspectBias <= 0 {
		return fmt.Errorf("taggersim: aspect bias must be positive, got %v", p.AspectBias)
	}
	if p.Activity < 0 {
		return fmt.Errorf("taggersim: activity must be non-negative, got %v", p.Activity)
	}
	return nil
}

// PopulationConfig parameterizes population generation.
type PopulationConfig struct {
	// Size is the number of taggers (default 50).
	Size int
	// UnreliableFraction is the share of low-reliability taggers
	// (default 0.1).
	UnreliableFraction float64
	// ReliableMean / UnreliableMean are the reliability centers of the two
	// groups (defaults 0.92 / 0.35).
	ReliableMean, UnreliableMean float64
	// MeanTags is the population mean tags per post (default 3).
	MeanTags float64
	// TypoRate is the shared typo share of noise (default 0.4).
	TypoRate float64
	// AspectBias is the shared sampling temperature (default 1.15).
	AspectBias float64
	// ActivityZipfS shapes activity inequality (default 0.8; a few taggers
	// do most of the work, as in real crowds).
	ActivityZipfS float64
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.Size <= 0 {
		c.Size = 50
	}
	if c.UnreliableFraction < 0 {
		c.UnreliableFraction = 0
	}
	if c.UnreliableFraction > 1 {
		c.UnreliableFraction = 1
	}
	if c.ReliableMean <= 0 {
		c.ReliableMean = 0.92
	}
	if c.UnreliableMean <= 0 {
		c.UnreliableMean = 0.35
	}
	if c.MeanTags <= 0 {
		c.MeanTags = 3
	}
	if c.TypoRate < 0 || c.TypoRate > 1 {
		c.TypoRate = 0.4
	}
	if c.AspectBias <= 0 {
		c.AspectBias = 1.15
	}
	if c.ActivityZipfS <= 0 {
		c.ActivityZipfS = 0.8
	}
	return c
}

// Population is a set of tagger profiles with an activity-weighted sampler.
type Population struct {
	Profiles []Profile
	picker   *rng.Categorical
	byID     map[string]int
}

// NewPopulation generates a population.
func NewPopulation(r *rand.Rand, cfg PopulationConfig) (*Population, error) {
	cfg = cfg.withDefaults()
	zipf, err := rng.NewZipf(cfg.Size, cfg.ActivityZipfS)
	if err != nil {
		return nil, err
	}
	ranks := rng.Shuffled(r, cfg.Size)
	p := &Population{byID: make(map[string]int, cfg.Size)}
	nUnreliable := int(math.Round(cfg.UnreliableFraction * float64(cfg.Size)))
	for i := 0; i < cfg.Size; i++ {
		rel := clamp01(cfg.ReliableMean + r.NormFloat64()*0.04)
		if i < nUnreliable {
			rel = clamp01(cfg.UnreliableMean + r.NormFloat64()*0.08)
		}
		prof := Profile{
			ID:          fmt.Sprintf("t%04d", i),
			Reliability: rel,
			TypoRate:    cfg.TypoRate,
			MeanTags:    math.Max(1, cfg.MeanTags+r.NormFloat64()*0.5),
			AspectBias:  cfg.AspectBias,
			Activity:    zipf.Prob(ranks[i]),
		}
		if err := prof.Validate(); err != nil {
			return nil, err
		}
		p.byID[prof.ID] = i
		p.Profiles = append(p.Profiles, prof)
	}
	weights := make([]float64, cfg.Size)
	for i, prof := range p.Profiles {
		weights[i] = prof.Activity
	}
	p.picker, err = rng.NewCategorical(weights)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Sample draws a tagger weighted by activity.
func (p *Population) Sample(r *rand.Rand) *Profile {
	return &p.Profiles[p.picker.Sample(r)]
}

// ByID returns the profile with the given ID.
func (p *Population) ByID(id string) (*Profile, bool) {
	i, ok := p.byID[id]
	if !ok {
		return nil, false
	}
	return &p.Profiles[i], true
}

// Size returns the number of taggers.
func (p *Population) Size() int { return len(p.Profiles) }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// latentSampler caches the tempered cumulative weights of one resource's
// latent distribution for a given aspect bias.
type latentSampler struct {
	tags []string
	cum  []float64
}

func newLatentSampler(latent rfd.Dist, bias float64) *latentSampler {
	s := &latentSampler{}
	s.tags = make([]string, 0, len(latent))
	for t := range latent {
		s.tags = append(s.tags, t)
	}
	sort.Strings(s.tags) // deterministic iteration
	s.cum = make([]float64, len(s.tags))
	var sum float64
	for i, t := range s.tags {
		sum += math.Pow(latent[t], bias)
		s.cum[i] = sum
	}
	return s
}

func (s *latentSampler) sample(r *rand.Rand) string {
	if len(s.tags) == 0 {
		return ""
	}
	total := s.cum[len(s.cum)-1]
	u := r.Float64() * total
	i := sort.SearchFloat64s(s.cum, u)
	if i >= len(s.tags) {
		i = len(s.tags) - 1
	}
	return s.tags[i]
}

// samplerKey identifies one resource's tempered sampler without the
// fmt.Sprintf allocation the old string key paid on every post.
type samplerKey struct {
	resourceID string
	bias       float64
}

// Simulator produces posts for resources, holding per-resource samplers.
// It is safe for concurrent use (engines pooled by core.Pool share one
// Simulator); samplers are immutable once built, so only the cache map
// needs the lock.
type Simulator struct {
	world  *dataset.World
	byID   map[string]int
	intern *vocab.Interner // optional: canonicalize produced tag strings

	mu       sync.RWMutex
	samplers map[samplerKey]*latentSampler
}

// NewSimulator builds a Simulator over a generated world.
func NewSimulator(world *dataset.World) *Simulator {
	return &Simulator{
		world:    world,
		byID:     world.Dataset.Index(),
		samplers: make(map[samplerKey]*latentSampler),
	}
}

// UseInterner routes every produced tag through in.Canon, so repeated tags
// (including repeated typos) share one canonical string instance with the
// quality trackers consuming the posts. Call before first use; it does not
// change which tags are produced, only their backing storage.
func (s *Simulator) UseInterner(in *vocab.Interner) *Simulator {
	s.intern = in
	return s
}

// GeneratePost produces one post by profile `prof` for the resource. The
// post is a nonempty set (duplicates collapsed by retrying a few times).
func (s *Simulator) GeneratePost(r *rand.Rand, prof *Profile, resourceID string) ([]string, error) {
	i, ok := s.byID[resourceID]
	if !ok {
		return nil, fmt.Errorf("taggersim: unknown resource %q", resourceID)
	}
	res := &s.world.Dataset.Resources[i]
	key := samplerKey{resourceID: resourceID, bias: prof.AspectBias}
	s.mu.RLock()
	ls, ok := s.samplers[key]
	s.mu.RUnlock()
	if !ok {
		s.mu.Lock()
		if ls, ok = s.samplers[key]; !ok {
			ls = newLatentSampler(res.Latent, prof.AspectBias)
			s.samplers[key] = ls
		}
		s.mu.Unlock()
	}

	n := rng.BoundedNormal(r, prof.MeanTags, 1.0, 1, 8)
	tags := make([]string, 0, n)
	for attempts := 0; len(tags) < n && attempts < n*4; attempts++ {
		var tag string
		if rng.Bernoulli(r, prof.Reliability) {
			tag = ls.sample(r)
		} else if rng.Bernoulli(r, prof.TypoRate) {
			tag = vocab.Typo(r, ls.sample(r))
		} else {
			tag = s.world.Vocab.RandomTag(r)
		}
		tag = rfd.Normalize(tag)
		if tag == "" {
			continue
		}
		if s.intern != nil {
			tag = s.intern.Canon(tag)
		}
		// Posts carry a handful of tags; a linear scan dedups without the
		// per-post set allocation.
		dup := false
		for _, t := range tags {
			if t == tag {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		tags = append(tags, tag)
	}
	if len(tags) == 0 { // degenerate profile; guarantee nonempty post
		tags = append(tags, ls.sample(r))
	}
	return tags, nil
}

// World returns the underlying world.
func (s *Simulator) World() *dataset.World { return s.world }

// TraceConfig parameterizes trace generation.
type TraceConfig struct {
	// NumPosts is the trace length (default 5000).
	NumPosts int
	// Start is the trace start time (default 2006-01-01 UTC, matching the
	// demo's Delicious-era protocol).
	Start time.Time
	// MeanGap is the mean inter-post gap (default 10 minutes).
	MeanGap time.Duration
	// ChoiceTheta is the preferential-attachment exponent for free choice:
	// resources are chosen with weight Popularity·(posts+1)^Theta
	// (default 0.8, reproducing rich-get-richer skew [5]).
	ChoiceTheta float64
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.NumPosts <= 0 {
		c.NumPosts = 5000
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 10 * time.Minute
	}
	if c.ChoiceTheta < 0 {
		c.ChoiceTheta = 0
	}
	if c.ChoiceTheta == 0 {
		c.ChoiceTheta = 0.8
	}
	return c
}

// GenerateTrace simulates free-choice tagging over the world and appends
// the resulting time-ordered posts to the world's dataset.
func (s *Simulator) GenerateTrace(r *rand.Rand, pop *Population, cfg TraceConfig) error {
	cfg = cfg.withDefaults()
	res := s.world.Dataset.Resources
	counts := make([]int, len(res))
	for _, p := range s.world.Dataset.Posts {
		if i, ok := s.byID[p.ResourceID]; ok {
			counts[i]++
		}
	}
	now := cfg.Start
	for n := 0; n < cfg.NumPosts; n++ {
		// Free choice: popularity × rich-get-richer.
		weights := make([]float64, len(res))
		for i := range res {
			weights[i] = res[i].Popularity * math.Pow(float64(counts[i]+1), cfg.ChoiceTheta)
		}
		pick, err := rng.NewCategorical(weights)
		if err != nil {
			return err
		}
		i := pick.Sample(r)
		prof := pop.Sample(r)
		tags, err := s.GeneratePost(r, prof, res[i].ID)
		if err != nil {
			return err
		}
		counts[i]++
		gap := time.Duration(float64(cfg.MeanGap) * rexp(r))
		now = now.Add(gap)
		s.world.Dataset.Posts = append(s.world.Dataset.Posts, dataset.Post{
			ResourceID: res[i].ID,
			TaggerID:   prof.ID,
			Tags:       tags,
			Time:       now,
		})
	}
	return nil
}

func rexp(r *rand.Rand) float64 {
	u := r.Float64()
	if u == 0 {
		u = 1e-12
	}
	return -math.Log(u)
}

// Replayer serves held-out posts per resource in trace order; it implements
// the §IV protocol where evaluation posts come from the real future of the
// trace rather than the generative model.
type Replayer struct {
	queues map[string][]dataset.Post
}

// NewReplayer groups evaluation posts by resource, preserving order.
func NewReplayer(eval []dataset.Post) *Replayer {
	q := make(map[string][]dataset.Post)
	for _, p := range eval {
		q[p.ResourceID] = append(q[p.ResourceID], p)
	}
	return &Replayer{queues: q}
}

// Next pops the next held-out post for the resource; ok=false when the
// resource's future is exhausted.
func (rp *Replayer) Next(resourceID string) (dataset.Post, bool) {
	q := rp.queues[resourceID]
	if len(q) == 0 {
		return dataset.Post{}, false
	}
	p := q[0]
	rp.queues[resourceID] = q[1:]
	return p, true
}

// Remaining returns how many held-out posts remain for the resource.
func (rp *Replayer) Remaining(resourceID string) int {
	return len(rp.queues[resourceID])
}

// TotalRemaining returns the total held-out posts left.
func (rp *Replayer) TotalRemaining() int {
	n := 0
	for _, q := range rp.queues {
		n += len(q)
	}
	return n
}
