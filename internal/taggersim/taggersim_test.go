package taggersim

import (
	"math"
	"testing"
	"time"

	"itag/internal/dataset"
	"itag/internal/quality"
	"itag/internal/rfd"
	"itag/internal/rng"
)

func testWorld(t *testing.T, n int) *dataset.World {
	t.Helper()
	w, err := dataset.Generate(rng.New(1), dataset.GeneratorConfig{NumResources: n})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestProfileValidate(t *testing.T) {
	good := Profile{ID: "t1", Reliability: 0.9, TypoRate: 0.3, MeanTags: 3, AspectBias: 1, Activity: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
	bad := []Profile{
		{ID: "", Reliability: 0.9, MeanTags: 3, AspectBias: 1},
		{ID: "x", Reliability: 1.5, MeanTags: 3, AspectBias: 1},
		{ID: "x", Reliability: 0.9, TypoRate: -0.1, MeanTags: 3, AspectBias: 1},
		{ID: "x", Reliability: 0.9, MeanTags: 0, AspectBias: 1},
		{ID: "x", Reliability: 0.9, MeanTags: 3, AspectBias: 0},
		{ID: "x", Reliability: 0.9, MeanTags: 3, AspectBias: 1, Activity: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestNewPopulation(t *testing.T) {
	r := rng.New(2)
	pop, err := NewPopulation(r, PopulationConfig{Size: 40, UnreliableFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if pop.Size() != 40 {
		t.Fatalf("size = %d", pop.Size())
	}
	unreliable := 0
	for _, p := range pop.Profiles {
		if err := p.Validate(); err != nil {
			t.Fatalf("generated profile invalid: %v", err)
		}
		if p.Reliability < 0.6 {
			unreliable++
		}
	}
	if unreliable != 10 {
		t.Errorf("unreliable count = %d, want 10", unreliable)
	}
	if _, ok := pop.ByID("t0005"); !ok {
		t.Error("ByID lookup failed")
	}
	if _, ok := pop.ByID("zzz"); ok {
		t.Error("missing ID must return false")
	}
}

func TestPopulationSampleWeightedByActivity(t *testing.T) {
	r := rng.New(3)
	pop, err := NewPopulation(r, PopulationConfig{Size: 10, ActivityZipfS: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for i := 0; i < 30000; i++ {
		counts[pop.Sample(r).ID]++
	}
	// Find the most active profile; it must be sampled most.
	var maxAct float64
	var maxID string
	for _, p := range pop.Profiles {
		if p.Activity > maxAct {
			maxAct, maxID = p.Activity, p.ID
		}
	}
	for id, c := range counts {
		if id != maxID && c > counts[maxID] {
			t.Errorf("profile %s sampled %d > most active %s %d", id, c, maxID, counts[maxID])
		}
	}
}

func TestGeneratePostHonest(t *testing.T) {
	w := testWorld(t, 5)
	sim := NewSimulator(w)
	r := rng.New(4)
	prof := &Profile{ID: "t1", Reliability: 1, TypoRate: 0, MeanTags: 3, AspectBias: 1, Activity: 1}
	res := w.Dataset.Resources[0]
	for i := 0; i < 200; i++ {
		tags, err := sim.GeneratePost(r, prof, res.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(tags) == 0 {
			t.Fatal("empty post")
		}
		seen := make(map[string]struct{})
		for _, tag := range tags {
			if _, ok := res.Latent[tag]; !ok {
				t.Fatalf("honest tagger produced off-latent tag %q", tag)
			}
			if _, dup := seen[tag]; dup {
				t.Fatalf("duplicate tag in post: %q", tag)
			}
			seen[tag] = struct{}{}
		}
	}
}

func TestGeneratePostNoisy(t *testing.T) {
	w := testWorld(t, 5)
	sim := NewSimulator(w)
	r := rng.New(5)
	prof := &Profile{ID: "t1", Reliability: 0, TypoRate: 0, MeanTags: 3, AspectBias: 1, Activity: 1}
	res := w.Dataset.Resources[0]
	offLatent := 0
	total := 0
	for i := 0; i < 100; i++ {
		tags, err := sim.GeneratePost(r, prof, res.ID)
		if err != nil {
			t.Fatal(err)
		}
		for _, tag := range tags {
			total++
			if _, ok := res.Latent[tag]; !ok {
				offLatent++
			}
		}
	}
	if float64(offLatent)/float64(total) < 0.8 {
		t.Errorf("fully unreliable tagger should be mostly off-latent: %d/%d", offLatent, total)
	}
}

func TestGeneratePostUnknownResource(t *testing.T) {
	w := testWorld(t, 2)
	sim := NewSimulator(w)
	prof := &Profile{ID: "t1", Reliability: 1, MeanTags: 2, AspectBias: 1}
	if _, err := sim.GeneratePost(rng.New(6), prof, "nope"); err == nil {
		t.Error("unknown resource must fail")
	}
}

func TestHonestStreamConvergesToLatent(t *testing.T) {
	// The core premise of the quality model: honest posts make the empirical
	// rfd converge to the latent distribution.
	w := testWorld(t, 3)
	sim := NewSimulator(w)
	r := rng.New(7)
	prof := &Profile{ID: "t1", Reliability: 1, TypoRate: 0, MeanTags: 3, AspectBias: 1, Activity: 1}
	res := w.Dataset.Resources[1]
	counts := rfd.NewCounts()
	for i := 0; i < 800; i++ {
		tags, err := sim.GeneratePost(r, prof, res.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := counts.AddPost(tags); err != nil {
			t.Fatal(err)
		}
	}
	sim1 := quality.Oracle(quality.MetricCosine, counts.Dist(), res.Latent)
	if sim1 < 0.93 {
		t.Errorf("honest rfd should approach latent; cosine = %v", sim1)
	}
}

func TestAspectBiasConcentratesHead(t *testing.T) {
	w := testWorld(t, 3)
	sim := NewSimulator(w)
	res := w.Dataset.Resources[0]
	entropyAt := func(bias float64, seed int64) float64 {
		r := rng.New(seed)
		prof := &Profile{ID: "t", Reliability: 1, MeanTags: 3, AspectBias: bias, Activity: 1}
		c := rfd.NewCounts()
		for i := 0; i < 500; i++ {
			tags, err := sim.GeneratePost(r, prof, res.ID)
			if err != nil {
				t.Fatal(err)
			}
			_ = c.AddPost(tags)
		}
		return rfd.Entropy(c.Dist())
	}
	faithful := entropyAt(1.0, 10)
	biased := entropyAt(3.0, 10)
	if biased >= faithful {
		t.Errorf("aspect bias must reduce entropy: faithful %v vs biased %v", faithful, biased)
	}
}

func TestGenerateTrace(t *testing.T) {
	w := testWorld(t, 30)
	sim := NewSimulator(w)
	r := rng.New(8)
	pop, err := NewPopulation(r, PopulationConfig{Size: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.GenerateTrace(r, pop, TraceConfig{NumPosts: 500}); err != nil {
		t.Fatal(err)
	}
	d := w.Dataset
	if len(d.Posts) != 500 {
		t.Fatalf("posts = %d", len(d.Posts))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	// Free choice must concentrate posts (rich get richer): Gini of post
	// counts should be clearly positive.
	counts := dataset.PostCounts(d.Posts)
	perRes := make([]float64, 0, len(d.Resources))
	for _, res := range d.Resources {
		perRes = append(perRes, float64(counts[res.ID]))
	}
	if g := dataset.Gini(perRes); g < 0.3 {
		t.Errorf("free-choice trace Gini = %v; expected popularity skew", g)
	}
}

func TestReplayer(t *testing.T) {
	base := time.Now().UTC()
	eval := []dataset.Post{
		{ResourceID: "a", Tags: []string{"1"}, Time: base},
		{ResourceID: "b", Tags: []string{"2"}, Time: base},
		{ResourceID: "a", Tags: []string{"3"}, Time: base},
	}
	rp := NewReplayer(eval)
	if rp.TotalRemaining() != 3 || rp.Remaining("a") != 2 {
		t.Fatalf("remaining: %d total, %d for a", rp.TotalRemaining(), rp.Remaining("a"))
	}
	p, ok := rp.Next("a")
	if !ok || p.Tags[0] != "1" {
		t.Fatalf("first a post: %+v %v", p, ok)
	}
	p, ok = rp.Next("a")
	if !ok || p.Tags[0] != "3" {
		t.Fatalf("second a post: %+v %v", p, ok)
	}
	if _, ok := rp.Next("a"); ok {
		t.Error("exhausted resource must return false")
	}
	if _, ok := rp.Next("zzz"); ok {
		t.Error("unknown resource must return false")
	}
	if rp.TotalRemaining() != 1 {
		t.Errorf("total remaining = %d", rp.TotalRemaining())
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	w1 := testWorld(t, 10)
	w2 := testWorld(t, 10)
	s1, s2 := NewSimulator(w1), NewSimulator(w2)
	prof := &Profile{ID: "t", Reliability: 0.8, TypoRate: 0.5, MeanTags: 3, AspectBias: 1.2, Activity: 1}
	r1, r2 := rng.New(42), rng.New(42)
	for i := 0; i < 50; i++ {
		a, err1 := s1.GeneratePost(r1, prof, "r0003")
		b, err2 := s2.GeneratePost(r2, prof, "r0003")
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(a) != len(b) {
			t.Fatal("same seed must reproduce posts")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("same seed must reproduce posts exactly")
			}
		}
	}
}

func TestReliabilityMonotoneQuality(t *testing.T) {
	// Higher reliability must yield higher oracle quality after the same
	// number of posts — the premise behind approval filtering (E7).
	w := testWorld(t, 3)
	res := w.Dataset.Resources[0]
	qualityAt := func(rel float64) float64 {
		sim := NewSimulator(w)
		r := rng.New(99)
		prof := &Profile{ID: "t", Reliability: rel, TypoRate: 0.4, MeanTags: 3, AspectBias: 1, Activity: 1}
		c := rfd.NewCounts()
		for i := 0; i < 300; i++ {
			tags, err := sim.GeneratePost(r, prof, res.ID)
			if err != nil {
				t.Fatal(err)
			}
			_ = c.AddPost(tags)
		}
		return quality.Oracle(quality.MetricCosine, c.Dist(), res.Latent)
	}
	lo, hi := qualityAt(0.2), qualityAt(0.95)
	if hi-lo < 0.1 {
		t.Errorf("reliability should strongly affect quality: low %v high %v", lo, hi)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Error("NaN quality")
	}
}
