package taggersim

import (
	"testing"
	"time"

	"itag/internal/dataset"
	"itag/internal/rng"
)

func TestTraceThetaControlsSkew(t *testing.T) {
	giniAt := func(theta float64) float64 {
		w, err := dataset.Generate(rng.New(5), dataset.GeneratorConfig{NumResources: 60})
		if err != nil {
			t.Fatal(err)
		}
		sim := NewSimulator(w)
		r := rng.New(6)
		pop, err := NewPopulation(r, PopulationConfig{Size: 20})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.GenerateTrace(r, pop, TraceConfig{NumPosts: 1500, ChoiceTheta: theta}); err != nil {
			t.Fatal(err)
		}
		counts := dataset.PostCounts(w.Dataset.Posts)
		per := make([]float64, 0, 60)
		for _, res := range w.Dataset.Resources {
			per = append(per, float64(counts[res.ID]))
		}
		return dataset.Gini(per)
	}
	low := giniAt(0.2)
	high := giniAt(1.2)
	if high <= low {
		t.Errorf("higher theta must concentrate posts: gini %.3f (θ=0.2) vs %.3f (θ=1.2)", low, high)
	}
}

func TestTraceTimestampsMonotone(t *testing.T) {
	w, err := dataset.Generate(rng.New(7), dataset.GeneratorConfig{NumResources: 10})
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(w)
	r := rng.New(8)
	pop, err := NewPopulation(r, PopulationConfig{Size: 5})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2006, 6, 1, 0, 0, 0, 0, time.UTC)
	if err := sim.GenerateTrace(r, pop, TraceConfig{NumPosts: 200, Start: start}); err != nil {
		t.Fatal(err)
	}
	prev := start
	for i, p := range w.Dataset.Posts {
		if p.Time.Before(prev) {
			t.Fatalf("post %d out of order", i)
		}
		prev = p.Time
	}
	if !w.Dataset.Posts[0].Time.After(start) {
		t.Error("trace must start after the configured start time")
	}
}

func TestTraceAppendsToExistingPosts(t *testing.T) {
	// Generating twice accumulates; counts from the first round influence
	// preferential attachment in the second (rich get richer across calls).
	w, err := dataset.Generate(rng.New(9), dataset.GeneratorConfig{NumResources: 10})
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(w)
	r := rng.New(10)
	pop, err := NewPopulation(r, PopulationConfig{Size: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.GenerateTrace(r, pop, TraceConfig{NumPosts: 100}); err != nil {
		t.Fatal(err)
	}
	if err := sim.GenerateTrace(r, pop, TraceConfig{NumPosts: 100}); err != nil {
		t.Fatal(err)
	}
	if len(w.Dataset.Posts) != 200 {
		t.Errorf("posts = %d, want 200", len(w.Dataset.Posts))
	}
}
