// Package metrics provides the small numeric containers the monitoring and
// experiment layers share: time series of labeled points, streaming
// mean/variance, and histogram summaries for report output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Point is one (x, y) sample of a series (x is typically budget spent or a
// step counter).
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is an append-only time series, safe for concurrent use.
type Series struct {
	mu     sync.RWMutex
	name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{name: name}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{X: x, Y: y})
	s.mu.Unlock()
}

// Len returns the number of points.
func (s *Series) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.points)
}

// Points returns a copy of the points.
func (s *Series) Points() []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Last returns the most recent point; ok=false when empty.
func (s *Series) Last() (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// CSV renders the series as "x,y" lines with a header.
func (s *Series) CSV() string {
	pts := s.Points()
	var b strings.Builder
	fmt.Fprintf(&b, "x,%s\n", s.name)
	for _, p := range pts {
		fmt.Fprintf(&b, "%g,%g\n", p.X, p.Y)
	}
	return b.String()
}

// Welford accumulates streaming mean and variance.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (0 for fewer than 2 observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Histogram counts observations into fixed-width buckets over [lo, hi);
// values outside the range clamp into the edge buckets.
type Histogram struct {
	lo, hi  float64
	buckets []int
	n       int
}

// NewHistogram builds a histogram with the given bucket count over [lo, hi).
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("metrics: bucket count must be positive, got %d", buckets)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("metrics: invalid range [%v, %v)", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, buckets)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.n++
}

// Counts returns a copy of the bucket counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// N returns the total observations.
func (h *Histogram) N() int { return h.n }

// BucketLabel returns the "[lo,hi)" label of bucket i.
func (h *Histogram) BucketLabel(i int) string {
	w := (h.hi - h.lo) / float64(len(h.buckets))
	return fmt.Sprintf("[%.2f,%.2f)", h.lo+float64(i)*w, h.lo+float64(i+1)*w)
}

// Mean returns the arithmetic mean of a slice (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of a slice (0 when empty); input not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}
