package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("quality")
	if s.Name() != "quality" {
		t.Error("name")
	}
	if _, ok := s.Last(); ok {
		t.Error("empty series must have no last point")
	}
	s.Add(1, 0.5)
	s.Add(2, 0.7)
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
	last, ok := s.Last()
	if !ok || last.X != 2 || last.Y != 0.7 {
		t.Errorf("last = %+v", last)
	}
	pts := s.Points()
	pts[0].Y = -1
	if s.Points()[0].Y == -1 {
		t.Error("Points must return a copy")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("q")
	s.Add(0, 0.25)
	s.Add(10, 0.5)
	got := s.CSV()
	want := "x,q\n0,0.25\n10,0.5\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	if !strings.HasPrefix(got, "x,q\n") {
		t.Error("missing header")
	}
}

func TestSeriesConcurrent(t *testing.T) {
	s := NewSeries("c")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Add(float64(i), float64(i))
				_ = s.Len()
				_, _ = s.Last()
			}
		}()
	}
	wg.Wait()
	if s.Len() != 4000 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Error("empty Welford must be zero")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-9 {
		t.Errorf("var = %v, want %v", w.Var(), 32.0/7.0)
	}
	if math.Abs(w.Std()-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Errorf("std = %v", w.Std())
	}
	var single Welford
	single.Add(3)
	if single.Var() != 0 {
		t.Error("variance with n=1 must be 0")
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero buckets must fail")
	}
	if _, err := NewHistogram(1, 1, 5); err == nil {
		t.Error("empty range must fail")
	}
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 0.3, 0.3, 0.8, -5, 5} {
		h.Add(x)
	}
	counts := h.Counts()
	if counts[0] != 2 { // 0.1 and clamped -5
		t.Errorf("bucket 0 = %d", counts[0])
	}
	if counts[1] != 2 {
		t.Errorf("bucket 1 = %d", counts[1])
	}
	if counts[3] != 2 { // 0.8 and clamped 5
		t.Errorf("bucket 3 = %d", counts[3])
	}
	if h.N() != 6 {
		t.Errorf("N = %d", h.N())
	}
	if h.BucketLabel(0) != "[0.00,0.25)" {
		t.Errorf("label = %s", h.BucketLabel(0))
	}
	counts[0] = 99
	if h.Counts()[0] == 99 {
		t.Error("Counts must return a copy")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	in := []float64{3, 1, 2}
	_ = Median(in)
	if in[0] != 3 {
		t.Error("Median must not reorder input")
	}
}
