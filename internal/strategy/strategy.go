// Package strategy implements ChooseResources() — the only point where the
// iTag allocation strategies differ (paper §II, Algorithm 1, Table I):
//
//	FC    Free Choice        taggers pick resources (popularity-weighted)
//	FP    Fewest Posts first prioritize resources with fewest posts
//	MU    Most Unstable first prioritize most unstable rfds
//	FP-MU Hybrid             FP first, then MU
//
// plus baselines (Random, RoundRobin), an ε-greedy extension, and the
// offline optimal allocators (greedy marginal-gain and exact DP over
// projected gain curves) that the demo compares strategies against (§IV).
package strategy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"itag/internal/rng"
)

// View is the snapshot of project state a strategy chooses from. Indices
// are stable across the run (position in the project's resource list).
type View interface {
	// Len is the number of resources.
	Len() int
	// Posts returns resource i's current post count (c_i + x_i).
	Posts(i int) int
	// Quality returns resource i's current stability quality estimate.
	Quality(i int) float64
	// Popularity returns resource i's attractiveness to free-choice
	// taggers.
	Popularity(i int) float64
	// Eligible reports whether resource i may receive tasks (false once
	// stopped by the provider or exhausted by a replay source).
	Eligible(i int) bool
}

// Strategy selects which resources receive the next batch of tasks.
// Implementations may be stateful across calls within one run; the engine
// creates a fresh Strategy per run.
type Strategy interface {
	// Name identifies the strategy ("fp", "mu", ...).
	Name() string
	// Choose returns up to batch distinct eligible resource indices. An
	// empty result means no eligible resources remain.
	Choose(v View, batch int, r *rand.Rand) []int
}

func eligible(v View) []int {
	out := make([]int, 0, v.Len())
	for i := 0; i < v.Len(); i++ {
		if v.Eligible(i) {
			out = append(out, i)
		}
	}
	return out
}

// FreeChoice (FC) models taggers freely choosing what to tag: resources are
// drawn proportionally to Popularity·(posts+1)^Theta — popularity plus
// rich-get-richer, the behaviour [5] observed on Delicious. Table I: it
// captures tagger preference but "may not improve tag quality of R
// significantly".
type FreeChoice struct {
	// Theta is the preferential-attachment exponent (default 0.8).
	Theta float64
}

// Name implements Strategy.
func (FreeChoice) Name() string { return "fc" }

// Choose implements Strategy.
func (s FreeChoice) Choose(v View, batch int, r *rand.Rand) []int {
	theta := s.Theta
	if theta <= 0 {
		theta = 0.8
	}
	idx := eligible(v)
	if len(idx) == 0 || batch <= 0 {
		return nil
	}
	if batch > len(idx) {
		batch = len(idx)
	}
	weights := make([]float64, len(idx))
	for j, i := range idx {
		weights[j] = v.Popularity(i) * math.Pow(float64(v.Posts(i)+1), theta)
		if weights[j] <= 0 {
			weights[j] = 1e-12
		}
	}
	chosen := make([]int, 0, batch)
	taken := make(map[int]struct{}, batch)
	cat, err := rng.NewCategorical(weights)
	if err != nil {
		return nil
	}
	// Rejection-sample distinct resources; bounded attempts, then fill from
	// the highest-weight leftovers for determinism of batch size.
	for attempts := 0; len(chosen) < batch && attempts < batch*20; attempts++ {
		j := cat.Sample(r)
		if _, dup := taken[j]; dup {
			continue
		}
		taken[j] = struct{}{}
		chosen = append(chosen, idx[j])
	}
	if len(chosen) < batch {
		order := rng.WeightedTopK(weights, len(weights))
		for _, j := range order {
			if len(chosen) == batch {
				break
			}
			if _, dup := taken[j]; dup {
				continue
			}
			taken[j] = struct{}{}
			chosen = append(chosen, idx[j])
		}
	}
	return chosen
}

// FewestPosts (FP) prioritizes resources with the fewest posts. Table I:
// it "reduces the number of resources with low tag quality".
type FewestPosts struct{}

// Name implements Strategy.
func (FewestPosts) Name() string { return "fp" }

// Choose implements Strategy.
func (FewestPosts) Choose(v View, batch int, r *rand.Rand) []int {
	idx := eligible(v)
	if len(idx) == 0 || batch <= 0 {
		return nil
	}
	// Random shuffle before the stable sort breaks post-count ties fairly.
	r.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
	sort.SliceStable(idx, func(a, b int) bool { return v.Posts(idx[a]) < v.Posts(idx[b]) })
	if batch > len(idx) {
		batch = len(idx)
	}
	return idx[:batch]
}

// MostUnstable (MU) prioritizes resources whose rfds are most unstable
// (lowest stability quality). Resources with fewer than MinPosts posts have
// no stability evidence and are treated as maximally unstable. Table I: it
// "increases the number of resources that can satisfy a certain quality
// requirement".
type MostUnstable struct {
	// MinPosts is the evidence threshold (default 2).
	MinPosts int
}

// Name implements Strategy.
func (MostUnstable) Name() string { return "mu" }

// Choose implements Strategy.
func (s MostUnstable) Choose(v View, batch int, r *rand.Rand) []int {
	minPosts := s.MinPosts
	if minPosts <= 0 {
		minPosts = 2
	}
	idx := eligible(v)
	if len(idx) == 0 || batch <= 0 {
		return nil
	}
	instability := func(i int) float64 {
		if v.Posts(i) < minPosts {
			return 1
		}
		return 1 - v.Quality(i)
	}
	r.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := instability(idx[a]), instability(idx[b])
		if ia != ib {
			return ia > ib
		}
		// Tie-break: fewer posts first (less evidence).
		return v.Posts(idx[a]) < v.Posts(idx[b])
	})
	if batch > len(idx) {
		batch = len(idx)
	}
	return idx[:batch]
}

// FPMU is the hybrid: FP until a trigger fires, then MU (Table I: "most
// effective in improving tag quality of R"). Two triggers are supported and
// the switch happens when either fires:
//
//   - MinPostsTarget K0 > 0: switch once every eligible resource has at
//     least K0 posts (FP's job — eliminating post-starved resources — is
//     done).
//   - SwitchFraction φ > 0 with TotalBudget set: switch after φ·B tasks.
type FPMU struct {
	// MinPostsTarget is the K0 trigger (default 5 when neither trigger is
	// configured).
	MinPostsTarget int
	// SwitchFraction is the budget-fraction trigger.
	SwitchFraction float64
	// TotalBudget is the run's budget B (needed by SwitchFraction).
	TotalBudget int

	fp       FewestPosts
	mu       MostUnstable
	spent    int
	switched bool
}

// NewFPMU returns the hybrid with the default K0=5 trigger.
func NewFPMU() *FPMU { return &FPMU{MinPostsTarget: 5} }

// Name implements Strategy.
func (s *FPMU) Name() string { return "fp-mu" }

// Phase reports which phase the hybrid is in ("fp" or "mu").
func (s *FPMU) Phase() string {
	if s.switched {
		return "mu"
	}
	return "fp"
}

// Choose implements Strategy.
func (s *FPMU) Choose(v View, batch int, r *rand.Rand) []int {
	if !s.switched {
		k0 := s.MinPostsTarget
		if k0 <= 0 && (s.SwitchFraction <= 0 || s.TotalBudget <= 0) {
			k0 = 5
		}
		if k0 > 0 {
			done := true
			for i := 0; i < v.Len(); i++ {
				if v.Eligible(i) && v.Posts(i) < k0 {
					done = false
					break
				}
			}
			if done {
				s.switched = true
			}
		}
		if !s.switched && s.SwitchFraction > 0 && s.TotalBudget > 0 &&
			float64(s.spent) >= s.SwitchFraction*float64(s.TotalBudget) {
			s.switched = true
		}
	}
	var out []int
	if s.switched {
		out = s.mu.Choose(v, batch, r)
	} else {
		out = s.fp.Choose(v, batch, r)
	}
	s.spent += len(out)
	return out
}

// Random allocates uniformly among eligible resources — the naive baseline.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Choose implements Strategy.
func (Random) Choose(v View, batch int, r *rand.Rand) []int {
	idx := eligible(v)
	if len(idx) == 0 || batch <= 0 {
		return nil
	}
	if batch > len(idx) {
		batch = len(idx)
	}
	picks := rng.SampleWithoutReplacement(r, len(idx), batch)
	out := make([]int, 0, batch)
	for _, j := range picks {
		out = append(out, idx[j])
	}
	return out
}

// RoundRobin cycles through eligible resources in index order — the
// equal-allocation baseline.
type RoundRobin struct {
	next int
}

// Name implements Strategy.
func (*RoundRobin) Name() string { return "round-robin" }

// Choose implements Strategy.
func (s *RoundRobin) Choose(v View, batch int, r *rand.Rand) []int {
	n := v.Len()
	if n == 0 || batch <= 0 {
		return nil
	}
	out := make([]int, 0, batch)
	for scanned := 0; scanned < n && len(out) < batch; scanned++ {
		i := s.next % n
		s.next++
		if v.Eligible(i) {
			out = append(out, i)
		}
	}
	return out
}

// EpsGreedy explores uniformly with probability Eps and otherwise defers
// to Exploit — an extension for when stability estimates are noisy.
type EpsGreedy struct {
	// Eps is the exploration probability (default 0.1).
	Eps float64
	// Exploit is the exploitation strategy (default MostUnstable).
	Exploit Strategy
}

// Name implements Strategy.
func (s EpsGreedy) Name() string { return "eps-greedy" }

// Choose implements Strategy.
func (s EpsGreedy) Choose(v View, batch int, r *rand.Rand) []int {
	eps := s.Eps
	if eps <= 0 {
		eps = 0.1
	}
	exploit := s.Exploit
	if exploit == nil {
		exploit = MostUnstable{}
	}
	if rng.Bernoulli(r, eps) {
		return Random{}.Choose(v, batch, r)
	}
	return exploit.Choose(v, batch, r)
}

// Planned dispenses a precomputed allocation plan (e.g. from the optimal
// allocators): Choose hands out indices with remaining planned tasks,
// most-remaining first.
type Planned struct {
	remaining []int
	name      string
}

// NewPlanned wraps an allocation x (x[i] = tasks planned for resource i).
func NewPlanned(name string, plan []int) *Planned {
	cp := make([]int, len(plan))
	copy(cp, plan)
	if name == "" {
		name = "planned"
	}
	return &Planned{remaining: cp, name: name}
}

// Name implements Strategy.
func (p *Planned) Name() string { return p.name }

// Remaining returns how many planned tasks are still undistributed.
func (p *Planned) Remaining() int {
	total := 0
	for _, x := range p.remaining {
		total += x
	}
	return total
}

// Choose implements Strategy.
func (p *Planned) Choose(v View, batch int, r *rand.Rand) []int {
	if batch <= 0 {
		return nil
	}
	type rem struct{ i, n int }
	var todo []rem
	for i, n := range p.remaining {
		if n > 0 && i < v.Len() && v.Eligible(i) {
			todo = append(todo, rem{i, n})
		}
	}
	sort.Slice(todo, func(a, b int) bool {
		if todo[a].n != todo[b].n {
			return todo[a].n > todo[b].n
		}
		return todo[a].i < todo[b].i
	})
	out := make([]int, 0, batch)
	for _, t := range todo {
		if len(out) == batch {
			break
		}
		out = append(out, t.i)
		p.remaining[t.i]--
	}
	return out
}

// Parse resolves a strategy by spec string. Supported specs:
//
//	fc | fc:theta=0.8
//	fp
//	mu | mu:minposts=2
//	fp-mu | fp-mu:k0=5 | fp-mu:frac=0.5,budget=1000
//	random
//	round-robin
//	eps-greedy | eps-greedy:eps=0.2
func Parse(spec string) (Strategy, error) {
	name, args, _ := strings.Cut(spec, ":")
	params := map[string]string{}
	if args != "" {
		for _, kv := range strings.Split(args, ",") {
			k, v, ok := strings.Cut(kv, "=")
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if !ok || k == "" || v == "" {
				return nil, fmt.Errorf("strategy: bad parameter %q in %q", kv, spec)
			}
			params[k] = v
		}
	}
	getF := func(key string, def float64) (float64, error) {
		s, ok := params[key]
		if !ok {
			return def, nil
		}
		return strconv.ParseFloat(s, 64)
	}
	getI := func(key string, def int) (int, error) {
		s, ok := params[key]
		if !ok {
			return def, nil
		}
		return strconv.Atoi(s)
	}
	switch name {
	case "fc":
		theta, err := getF("theta", 0.8)
		if err != nil {
			return nil, err
		}
		return FreeChoice{Theta: theta}, nil
	case "fp":
		return FewestPosts{}, nil
	case "mu":
		mp, err := getI("minposts", 2)
		if err != nil {
			return nil, err
		}
		return MostUnstable{MinPosts: mp}, nil
	case "fp-mu", "fpmu":
		k0, err := getI("k0", 0)
		if err != nil {
			return nil, err
		}
		frac, err := getF("frac", 0)
		if err != nil {
			return nil, err
		}
		budget, err := getI("budget", 0)
		if err != nil {
			return nil, err
		}
		s := &FPMU{MinPostsTarget: k0, SwitchFraction: frac, TotalBudget: budget}
		if k0 <= 0 && frac <= 0 {
			s.MinPostsTarget = 5
		}
		return s, nil
	case "random":
		return Random{}, nil
	case "round-robin", "rr":
		return &RoundRobin{}, nil
	case "eps-greedy", "eps":
		eps, err := getF("eps", 0.1)
		if err != nil {
			return nil, err
		}
		return EpsGreedy{Eps: eps}, nil
	default:
		return nil, fmt.Errorf("strategy: unknown strategy %q", name)
	}
}
