package strategy

import (
	"math"
	"testing"
	"testing/quick"

	"itag/internal/quality"
	"itag/internal/rng"
)

// fakeView is a deterministic View for strategy tests.
type fakeView struct {
	posts      []int
	qual       []float64
	pop        []float64
	ineligible map[int]bool
}

func (f *fakeView) Len() int                 { return len(f.posts) }
func (f *fakeView) Posts(i int) int          { return f.posts[i] }
func (f *fakeView) Quality(i int) float64    { return f.qual[i] }
func (f *fakeView) Popularity(i int) float64 { return f.pop[i] }
func (f *fakeView) Eligible(i int) bool      { return !f.ineligible[i] }

func newFakeView(n int) *fakeView {
	f := &fakeView{
		posts:      make([]int, n),
		qual:       make([]float64, n),
		pop:        make([]float64, n),
		ineligible: make(map[int]bool),
	}
	for i := range f.pop {
		f.pop[i] = 1.0 / float64(n)
	}
	return f
}

func assertDistinctEligible(t *testing.T, v *fakeView, got []int, batch int) {
	t.Helper()
	if len(got) > batch {
		t.Fatalf("returned %d > batch %d", len(got), batch)
	}
	seen := make(map[int]bool)
	for _, i := range got {
		if i < 0 || i >= v.Len() {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		if v.ineligible[i] {
			t.Fatalf("ineligible index %d chosen", i)
		}
		seen[i] = true
	}
}

func TestFewestPostsPicksSmallest(t *testing.T) {
	v := newFakeView(5)
	v.posts = []int{10, 3, 7, 1, 5}
	r := rng.New(1)
	got := FewestPosts{}.Choose(v, 2, r)
	assertDistinctEligible(t, v, got, 2)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	want := map[int]bool{3: true, 1: true} // posts 1 and 3
	for _, i := range got {
		if !want[i] {
			t.Errorf("FP chose %d (posts=%d), want resources with fewest posts", i, v.posts[i])
		}
	}
}

func TestFewestPostsTieBreakIsFair(t *testing.T) {
	v := newFakeView(4) // all zero posts: pure tie
	r := rng.New(7)
	counts := make(map[int]int)
	for trial := 0; trial < 4000; trial++ {
		got := FewestPosts{}.Choose(v, 1, r)
		counts[got[0]]++
	}
	for i := 0; i < 4; i++ {
		frac := float64(counts[i]) / 4000
		if math.Abs(frac-0.25) > 0.05 {
			t.Errorf("tie-break not fair: resource %d chosen %.3f", i, frac)
		}
	}
}

func TestMostUnstablePicksLowQuality(t *testing.T) {
	v := newFakeView(4)
	v.posts = []int{10, 10, 10, 10}
	v.qual = []float64{0.9, 0.2, 0.6, 0.95}
	got := MostUnstable{}.Choose(v, 2, rng.New(2))
	assertDistinctEligible(t, v, got, 2)
	if got[0] != 1 {
		t.Errorf("most unstable should be resource 1, got %v", got)
	}
	if got[1] != 2 {
		t.Errorf("second most unstable should be resource 2, got %v", got)
	}
}

func TestMostUnstableTreatsFewPostsAsMaxUnstable(t *testing.T) {
	v := newFakeView(3)
	v.posts = []int{50, 1, 50}
	v.qual = []float64{0.1, 0.99, 0.2} // resource 1 "looks" stable but has 1 post
	got := MostUnstable{MinPosts: 2}.Choose(v, 1, rng.New(3))
	if got[0] != 1 {
		t.Errorf("resource below MinPosts must rank first, got %v", got)
	}
}

func TestFreeChoiceFavorsPopular(t *testing.T) {
	v := newFakeView(10)
	v.pop = make([]float64, 10)
	for i := range v.pop {
		v.pop[i] = 0.01
	}
	v.pop[4] = 0.91
	r := rng.New(4)
	counts := make(map[int]int)
	for trial := 0; trial < 2000; trial++ {
		got := FreeChoice{}.Choose(v, 1, r)
		assertDistinctEligible(t, v, got, 1)
		counts[got[0]]++
	}
	if counts[4] < 1200 {
		t.Errorf("popular resource chosen only %d/2000", counts[4])
	}
}

func TestFreeChoiceRichGetRicher(t *testing.T) {
	v := newFakeView(2)
	v.pop = []float64{0.5, 0.5}
	v.posts = []int{100, 0}
	r := rng.New(5)
	c0 := 0
	for trial := 0; trial < 2000; trial++ {
		if (FreeChoice{Theta: 1}).Choose(v, 1, r)[0] == 0 {
			c0++
		}
	}
	if c0 < 1800 {
		t.Errorf("rich-get-richer should strongly favor resource 0: %d/2000", c0)
	}
}

func TestFPMUSwitchesOnK0(t *testing.T) {
	v := newFakeView(3)
	v.posts = []int{0, 0, 0}
	v.qual = []float64{0.1, 0.5, 0.9}
	s := &FPMU{MinPostsTarget: 2}
	r := rng.New(6)
	if s.Phase() != "fp" {
		t.Fatal("must start in FP phase")
	}
	// Simulate: allocate and bump posts until all have >= 2.
	for iter := 0; iter < 20 && s.Phase() == "fp"; iter++ {
		got := s.Choose(v, 1, r)
		if len(got) == 0 {
			t.Fatal("no choice")
		}
		v.posts[got[0]]++
	}
	if s.Phase() != "mu" {
		t.Errorf("hybrid did not switch after K0 reached; posts=%v", v.posts)
	}
	// In MU phase it must pick by instability.
	v.posts = []int{5, 5, 5}
	got := s.Choose(v, 1, r)
	if got[0] != 0 {
		t.Errorf("MU phase should pick most unstable (0), got %v", got)
	}
}

func TestFPMUSwitchesOnBudgetFraction(t *testing.T) {
	v := newFakeView(4)
	// Keep posts below any K0 so only the fraction trigger can fire.
	s := &FPMU{SwitchFraction: 0.5, TotalBudget: 10}
	r := rng.New(7)
	spent := 0
	for spent < 10 {
		got := s.Choose(v, 1, r)
		spent += len(got)
		if spent <= 5 && s.Phase() != "fp" {
			t.Fatalf("switched too early at spent=%d", spent)
		}
	}
	if s.Phase() != "mu" {
		t.Error("hybrid did not switch after budget fraction")
	}
}

func TestRandomUniform(t *testing.T) {
	v := newFakeView(5)
	r := rng.New(8)
	counts := make(map[int]int)
	for trial := 0; trial < 5000; trial++ {
		got := Random{}.Choose(v, 1, r)
		assertDistinctEligible(t, v, got, 1)
		counts[got[0]]++
	}
	for i := 0; i < 5; i++ {
		frac := float64(counts[i]) / 5000
		if math.Abs(frac-0.2) > 0.05 {
			t.Errorf("resource %d frequency %.3f, want 0.2", i, frac)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	v := newFakeView(3)
	s := &RoundRobin{}
	r := rng.New(9)
	var seq []int
	for i := 0; i < 6; i++ {
		seq = append(seq, s.Choose(v, 1, r)...)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("round robin sequence %v, want %v", seq, want)
		}
	}
}

func TestRoundRobinSkipsIneligible(t *testing.T) {
	v := newFakeView(3)
	v.ineligible[1] = true
	s := &RoundRobin{}
	r := rng.New(10)
	for i := 0; i < 10; i++ {
		got := s.Choose(v, 1, r)
		if len(got) == 1 && got[0] == 1 {
			t.Fatal("chose ineligible resource")
		}
	}
}

func TestEpsGreedy(t *testing.T) {
	v := newFakeView(3)
	v.posts = []int{10, 10, 10}
	v.qual = []float64{0.99, 0.99, 0.0}
	r := rng.New(11)
	nonGreedy := 0
	for trial := 0; trial < 2000; trial++ {
		got := EpsGreedy{Eps: 0.3}.Choose(v, 1, r)
		if got[0] != 2 {
			nonGreedy++
		}
	}
	// Exploration picks a non-optimal resource ~0.3*(2/3) = 0.2 of the time.
	frac := float64(nonGreedy) / 2000
	if frac < 0.1 || frac > 0.3 {
		t.Errorf("exploration fraction = %.3f, want ~0.2", frac)
	}
}

func TestAllStrategiesRespectEligibilityAndBatch(t *testing.T) {
	strategies := []Strategy{
		FreeChoice{}, FewestPosts{}, MostUnstable{}, NewFPMU(),
		Random{}, &RoundRobin{}, EpsGreedy{},
	}
	v := newFakeView(10)
	v.posts = []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for i := range v.qual {
		v.qual[i] = float64(i) / 10
	}
	v.ineligible[2] = true
	v.ineligible[7] = true
	r := rng.New(12)
	for _, s := range strategies {
		for _, batch := range []int{0, 1, 3, 8, 20} {
			got := s.Choose(v, batch, r)
			assertDistinctEligible(t, v, got, batch)
			if batch >= 8 && len(got) != 8 {
				t.Errorf("%s: batch %d with 8 eligible returned %d", s.Name(), batch, len(got))
			}
		}
	}
}

func TestAllStrategiesEmptyWhenNoneEligible(t *testing.T) {
	strategies := []Strategy{
		FreeChoice{}, FewestPosts{}, MostUnstable{}, NewFPMU(),
		Random{}, &RoundRobin{}, EpsGreedy{},
	}
	v := newFakeView(4)
	for i := 0; i < 4; i++ {
		v.ineligible[i] = true
	}
	r := rng.New(13)
	for _, s := range strategies {
		if got := s.Choose(v, 3, r); len(got) != 0 {
			t.Errorf("%s chose %v with nothing eligible", s.Name(), got)
		}
	}
}

func TestPlanned(t *testing.T) {
	v := newFakeView(4)
	p := NewPlanned("opt", []int{0, 3, 1, 0})
	r := rng.New(14)
	counts := make(map[int]int)
	for p.Remaining() > 0 {
		got := p.Choose(v, 2, r)
		if len(got) == 0 {
			t.Fatal("planned stalled with remaining > 0")
		}
		for _, i := range got {
			counts[i]++
		}
	}
	if counts[1] != 3 || counts[2] != 1 || counts[0] != 0 || counts[3] != 0 {
		t.Errorf("planned dispensed %v, want map[1:3 2:1]", counts)
	}
	if got := p.Choose(v, 2, r); len(got) != 0 {
		t.Errorf("exhausted plan returned %v", got)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"fc", "fc"}, {"fc:theta=1.2", "fc"}, {"fp", "fp"},
		{"mu", "mu"}, {"mu:minposts=4", "mu"},
		{"fp-mu", "fp-mu"}, {"fpmu:k0=3", "fp-mu"},
		{"fp-mu:frac=0.3,budget=100", "fp-mu"},
		{"random", "random"}, {"round-robin", "round-robin"}, {"rr", "round-robin"},
		{"eps-greedy", "eps-greedy"}, {"eps:eps=0.2", "eps-greedy"},
	}
	for _, tc := range cases {
		s, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if s.Name() != tc.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", tc.spec, s.Name(), tc.name)
		}
	}
	for _, bad := range []string{"nope", "fc:theta=abc", "mu:minposts=x", "fp-mu:k0", "fc:="} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// --- optimal allocators -------------------------------------------------------

func tables(curves []quality.Curve, k0s []int, maxX int) []*quality.GainTable {
	out := make([]*quality.GainTable, len(curves))
	for i, c := range curves {
		out[i] = quality.NewGainTable(c, k0s[i], maxX)
	}
	return out
}

func TestGreedyAllocateBasics(t *testing.T) {
	ts := tables(
		[]quality.Curve{
			{QMax: 0.9, A: 0.9, Lambda: 0.3},
			{QMax: 0.9, A: 0.1, Lambda: 0.3}, // nearly converged: low gains
		},
		[]int{0, 0}, 50,
	)
	x, total, err := GreedyAllocate(ts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if x[0]+x[1] != 10 {
		t.Errorf("budget not conserved: %v", x)
	}
	if x[0] <= x[1] {
		t.Errorf("greedy should favor the high-gain resource: %v", x)
	}
	if total <= 0 {
		t.Error("total gain must be positive")
	}
}

func TestGreedyAllocateEdgeCases(t *testing.T) {
	if _, _, err := GreedyAllocate(nil, -1); err == nil {
		t.Error("negative budget must fail")
	}
	x, total, err := GreedyAllocate(nil, 5)
	if err != nil || len(x) != 0 || total != 0 {
		t.Error("empty tables must yield empty allocation")
	}
	ts := tables([]quality.Curve{{QMax: 0.5, A: 0.4, Lambda: 0.5}}, []int{0}, 3)
	x, _, err = GreedyAllocate(ts, 100) // budget exceeds capacity
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 {
		t.Errorf("allocation beyond table capacity: %v", x)
	}
}

func TestDPMatchesGreedyOnConcaveTables(t *testing.T) {
	r := rng.New(15)
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(6)
		curves := make([]quality.Curve, n)
		k0s := make([]int, n)
		for i := range curves {
			curves[i] = quality.Curve{
				QMax:   0.5 + r.Float64()*0.5,
				A:      r.Float64() * 0.5,
				Lambda: 0.02 + r.Float64()*0.4,
			}
			k0s[i] = r.Intn(10)
		}
		ts := tables(curves, k0s, 40)
		budget := 1 + r.Intn(60)
		gx, gTotal, err := GreedyAllocate(ts, budget)
		if err != nil {
			t.Fatal(err)
		}
		dx, dTotal, err := DPAllocate(ts, budget)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gTotal-dTotal) > 1e-9 {
			t.Fatalf("trial %d: greedy %v (%.6f) vs DP %v (%.6f)", trial, gx, gTotal, dx, dTotal)
		}
		// Verify reported totals match the allocations.
		if tg, _ := TotalGain(ts, gx); math.Abs(tg-gTotal) > 1e-9 {
			t.Fatalf("greedy total mismatch: %v vs %v", tg, gTotal)
		}
		if tg, _ := TotalGain(ts, dx); math.Abs(tg-dTotal) > 1e-9 {
			t.Fatalf("dp total mismatch: %v vs %v", tg, dTotal)
		}
	}
}

func TestDPBeatsOrMatchesAnyAllocation(t *testing.T) {
	ts := tables(
		[]quality.Curve{
			{QMax: 0.9, A: 0.8, Lambda: 0.2},
			{QMax: 0.8, A: 0.6, Lambda: 0.1},
			{QMax: 0.95, A: 0.3, Lambda: 0.4},
		},
		[]int{0, 5, 2}, 30,
	)
	_, best, err := DPAllocate(ts, 12)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(16)
	for trial := 0; trial < 200; trial++ {
		// Random allocation of exactly 12.
		x := make([]int, 3)
		for b := 0; b < 12; b++ {
			x[r.Intn(3)]++
		}
		tg, err := TotalGain(ts, x)
		if err != nil {
			t.Fatal(err)
		}
		if tg > best+1e-9 {
			t.Fatalf("random allocation %v (%.6f) beats DP optimum (%.6f)", x, tg, best)
		}
	}
}

func TestTotalGainValidation(t *testing.T) {
	ts := tables([]quality.Curve{{QMax: 0.9, A: 0.5, Lambda: 0.1}}, []int{0}, 10)
	if _, err := TotalGain(ts, []int{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := TotalGain(ts, []int{-1}); err == nil {
		t.Error("negative allocation must fail")
	}
}

func TestPropertyBudgetConservation(t *testing.T) {
	// Every strategy must hand out exactly min(batch, eligible) per call,
	// so a full run allocates exactly B tasks while any resource is
	// eligible.
	f := func(seed int64, batchRaw, nRaw uint8) bool {
		n := int(nRaw)%20 + 1
		batch := int(batchRaw)%5 + 1
		v := newFakeView(n)
		r := rng.New(seed)
		for _, s := range []Strategy{FreeChoice{}, FewestPosts{}, MostUnstable{}, NewFPMU(), Random{}, &RoundRobin{}} {
			total := 0
			budget := 30
			for total < budget {
				want := batch
				if budget-total < want {
					want = budget - total
				}
				got := s.Choose(v, want, r)
				wantN := want
				if n < wantN {
					wantN = n
				}
				if len(got) != wantN {
					return false
				}
				for _, i := range got {
					v.posts[i]++
				}
				total += len(got)
			}
			if total != budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGreedyAllocate(b *testing.B) {
	r := rng.New(1)
	n := 500
	curves := make([]quality.Curve, n)
	k0s := make([]int, n)
	for i := range curves {
		curves[i] = quality.Curve{QMax: 0.9, A: r.Float64() * 0.8, Lambda: 0.02 + r.Float64()*0.2}
		k0s[i] = r.Intn(20)
	}
	ts := tables(curves, k0s, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = GreedyAllocate(ts, 2000)
	}
}

func BenchmarkMUChoose(b *testing.B) {
	v := newFakeView(1000)
	r := rng.New(1)
	for i := range v.qual {
		v.qual[i] = r.Float64()
		v.posts[i] = r.Intn(50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MostUnstable{}.Choose(v, 32, r)
	}
}
