package strategy

import (
	"container/heap"
	"fmt"

	"itag/internal/quality"
)

// This file implements the optimal allocation the demo compares against
// (§IV: "compare them with the optimal allocation strategy"). Given
// per-resource projected gain tables g_i(x) (from fitted or Monte-Carlo
// quality curves), the optimum maximizes Σ_i g_i(x_i) subject to Σ x_i = B.
//
// GainTables are monotone and concave by construction, so greedy marginal-
// gain allocation is exact; DPAllocate is the general exact solver used to
// cross-check greedy in tests (and to handle hypothetical non-concave
// inputs).

// GreedyAllocate maximizes total projected gain with a max-heap over
// marginal gains: O(B log n). It returns the allocation x (len(tables))
// and the total projected gain. Budget beyond the tables' combined capacity
// is left unallocated.
func GreedyAllocate(tables []*quality.GainTable, budget int) ([]int, float64, error) {
	if budget < 0 {
		return nil, 0, fmt.Errorf("strategy: negative budget %d", budget)
	}
	x := make([]int, len(tables))
	if budget == 0 || len(tables) == 0 {
		return x, 0, nil
	}
	h := &marginalHeap{}
	for i, t := range tables {
		if t == nil {
			return nil, 0, fmt.Errorf("strategy: nil gain table at %d", i)
		}
		if t.MaxX() > 0 {
			heap.Push(h, marginalItem{idx: i, x: 0, gain: t.Marginal(0)})
		}
	}
	var total float64
	for b := 0; b < budget && h.Len() > 0; b++ {
		it := heap.Pop(h).(marginalItem)
		x[it.idx]++
		total += it.gain
		nx := it.x + 1
		if nx < tables[it.idx].MaxX() {
			heap.Push(h, marginalItem{idx: it.idx, x: nx, gain: tables[it.idx].Marginal(nx)})
		}
	}
	return x, total, nil
}

type marginalItem struct {
	idx  int
	x    int
	gain float64
}

type marginalHeap []marginalItem

func (h marginalHeap) Len() int { return len(h) }
func (h marginalHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].idx < h[j].idx // deterministic ties
}
func (h marginalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *marginalHeap) Push(v any)   { *h = append(*h, v.(marginalItem)) }
func (h *marginalHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// DPAllocate solves the allocation exactly by dynamic programming in
// O(n·B·maxX) time and O(n·B) space. It does not require concavity; use it
// to validate GreedyAllocate or for small instances.
func DPAllocate(tables []*quality.GainTable, budget int) ([]int, float64, error) {
	if budget < 0 {
		return nil, 0, fmt.Errorf("strategy: negative budget %d", budget)
	}
	n := len(tables)
	x := make([]int, n)
	if budget == 0 || n == 0 {
		return x, 0, nil
	}
	const neg = -1.0 // gains are >= 0; -1 marks unreachable
	// dp[i][b]: best gain using resources [0, i) with exactly b' <= b
	// spendable... we allow Σx <= B (leftover budget wastes nothing since
	// gains are non-negative and zero-extension is always possible).
	dp := make([][]float64, n+1)
	choice := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]float64, budget+1)
		choice[i] = make([]int, budget+1)
		for b := range dp[i] {
			dp[i][b] = neg
		}
	}
	for b := 0; b <= budget; b++ {
		dp[0][b] = 0
	}
	for i := 1; i <= n; i++ {
		t := tables[i-1]
		if t == nil {
			return nil, 0, fmt.Errorf("strategy: nil gain table at %d", i-1)
		}
		maxX := t.MaxX()
		for b := 0; b <= budget; b++ {
			for xi := 0; xi <= maxX && xi <= b; xi++ {
				prev := dp[i-1][b-xi]
				if prev < 0 {
					continue
				}
				cand := prev + t.Gain(xi)
				if cand > dp[i][b] {
					dp[i][b] = cand
					choice[i][b] = xi
				}
			}
		}
	}
	// Reconstruct from the full budget.
	b := budget
	for i := n; i >= 1; i-- {
		xi := choice[i][b]
		x[i-1] = xi
		b -= xi
	}
	return x, dp[n][budget], nil
}

// TotalGain evaluates an allocation against gain tables.
func TotalGain(tables []*quality.GainTable, x []int) (float64, error) {
	if len(tables) != len(x) {
		return 0, fmt.Errorf("strategy: allocation length %d != tables %d", len(x), len(tables))
	}
	var total float64
	for i, t := range tables {
		if x[i] < 0 {
			return 0, fmt.Errorf("strategy: negative allocation at %d", i)
		}
		total += t.Gain(x[i])
	}
	return total, nil
}
