package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"itag/internal/store"
)

// ParseSpec compiles the `itagd -chaos-spec` mini-language into a
// Schedule. Clauses are semicolon-separated; each clause is either
// `seed=N` or one fault described by comma-separated key[=value] fields:
//
//	kind        partition | loss=P | latency=DUR | stall=DUR | torn-write
//	scope       from=HOST to=HOST oneway        (network faults)
//	            host=PATHSUBSTR site=FAILPOINT  (disk faults)
//	window      after=DUR for=DUR
//
// Example — a 2s partition of node-b starting 5s in, 30ms of extra latency
// toward node-c for a minute, and a mid-batch torn write on node-a's disk:
//
//	seed=42;after=5s,for=2s,partition,from=*,to=node-b;after=10s,for=1m,latency=30ms,to=node-c;after=20s,torn-write,host=node-a
//
// Hosts are matched scheme-insensitively; "*" (the default) matches any.
func ParseSpec(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok && !strings.Contains(clause, ",") {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %v", v, err)
			}
			s.Seed = seed
			continue
		}
		f, err := parseFault(clause)
		if err != nil {
			return nil, err
		}
		s.Faults = append(s.Faults, f)
	}
	if len(s.Faults) == 0 {
		return nil, fmt.Errorf("chaos: spec %q declares no faults", spec)
	}
	return s, nil
}

func parseFault(clause string) (Fault, error) {
	var f Fault
	for _, field := range strings.Split(clause, ",") {
		field = strings.TrimSpace(field)
		key, val, _ := strings.Cut(field, "=")
		var err error
		switch key {
		case "partition":
			f.Kind = KindPartition
		case "torn-write":
			f.Kind = KindTornWrite
		case "loss":
			f.Kind = KindLoss
			if f.P, err = strconv.ParseFloat(val, 64); err != nil || f.P < 0 || f.P > 1 {
				return f, fmt.Errorf("chaos: bad loss probability %q in %q", val, clause)
			}
		case "latency":
			f.Kind = KindLatency
			if f.Delay, err = time.ParseDuration(val); err != nil {
				return f, fmt.Errorf("chaos: bad latency %q in %q", val, clause)
			}
		case "stall":
			f.Kind = KindDiskStall
			if f.Delay, err = time.ParseDuration(val); err != nil {
				return f, fmt.Errorf("chaos: bad stall %q in %q", val, clause)
			}
		case "from":
			f.From = val
		case "to":
			f.To = val
		case "oneway":
			f.OneWay = true
		case "host":
			f.Host = val
		case "site":
			f.Site = store.Failpoint(val)
		case "after":
			if f.After, err = time.ParseDuration(val); err != nil {
				return f, fmt.Errorf("chaos: bad after %q in %q", val, clause)
			}
		case "for":
			if f.For, err = time.ParseDuration(val); err != nil {
				return f, fmt.Errorf("chaos: bad for %q in %q", val, clause)
			}
		default:
			return f, fmt.Errorf("chaos: unknown field %q in %q", field, clause)
		}
	}
	if f.Kind == 0 {
		return f, fmt.Errorf("chaos: clause %q names no fault kind", clause)
	}
	return f, nil
}
