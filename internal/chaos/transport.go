package chaos

import (
	"context"
	"net"
	"net/http"
	"syscall"
	"time"
)

// Transport injects the schedule's network faults around an inner
// http.RoundTripper. One Transport represents one side of the network: From
// is the identity of the node (or client) whose outbound traffic it
// carries, and each request evaluates two legs — the request leg
// From→URL.Host and the response leg URL.Host→From — so one-way loss and
// asymmetric partitions behave like they would on a real wire. With a nil
// or disarmed schedule every request passes straight through.
type Transport struct {
	Inner http.RoundTripper
	Sched *Schedule
	// From identifies this side in fault matching ("" matches only
	// wildcard faults).
	From string
}

// Wrap returns inner wrapped with the schedule's faults for traffic
// originating at from.
func Wrap(inner http.RoundTripper, s *Schedule, from string) *Transport {
	return &Transport{Inner: inner, Sched: s, From: from}
}

var (
	errUnreachable = &net.OpError{Op: "dial", Net: "tcp", Err: syscall.EHOSTUNREACH}
	errReqLost     = &net.OpError{Op: "write", Net: "tcp", Err: syscall.ECONNRESET}
	errRespLost    = &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
)

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	s := t.Sched
	if !s.Active() {
		return t.Inner.RoundTrip(req)
	}
	to := req.URL.Host

	reqLeg := s.Leg(t.From, to)
	if reqLeg.Delay > 0 {
		if err := sleepCtx(req.Context(), reqLeg.Delay); err != nil {
			return nil, err
		}
	}
	if reqLeg.Drop {
		if reqLeg.Unreachable {
			return nil, errUnreachable
		}
		return nil, errReqLost
	}

	resp, err := t.Inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}

	// The response leg is evaluated after the handler ran: a dropped
	// response means the work happened but the caller never learns — the
	// window quorum mode exists to survive.
	respLeg := s.Leg(to, t.From)
	if respLeg.Delay > 0 {
		if err := sleepCtx(req.Context(), respLeg.Delay); err != nil {
			resp.Body.Close()
			return nil, err
		}
	}
	if respLeg.Drop {
		resp.Body.Close()
		if respLeg.Unreachable {
			return nil, errUnreachable
		}
		return nil, errRespLost
	}
	return resp, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-tm.C:
		return nil
	}
}

// listener applies inbound faults at the accept edge for real TCP
// deployments (itagd -chaos-spec): connections arriving while a partition
// involving this host is active are closed immediately, and inbound latency
// faults delay the hand-off to the HTTP server.
type listener struct {
	net.Listener
	sched *Schedule
	host  string
}

// WrapListener wraps ln with the schedule's inbound faults for the node
// advertised as host. A nil schedule returns ln unchanged.
func WrapListener(ln net.Listener, s *Schedule, host string) net.Listener {
	if s == nil {
		return ln
	}
	return &listener{Listener: ln, sched: s, host: host}
}

// Accept implements net.Listener. The remote identity of an inbound TCP
// connection is unknown until the request arrives, so accept-edge faults
// match the wildcard source: a partition "*"→host refuses every inbound
// connection, a latency fault "*"→host delays each accept hand-off.
func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil || !l.sched.Active() {
			return c, err
		}
		v := l.sched.Leg("*", l.host)
		if v.Delay > 0 {
			time.Sleep(v.Delay)
		}
		if v.Drop {
			_ = c.Close()
			continue
		}
		return c, nil
	}
}
