// Package chaos is the process-wide fault-injection layer: a seeded,
// deterministic schedule of network and disk faults that tests, the S10
// drill, and `itagd -chaos-spec` script against the real stack.
//
// A Schedule holds an ordered set of Faults, each active inside a window
// relative to Start(). Network faults (partition, one-way loss, latency
// spikes) are applied by the Transport RoundTripper wrapper and the
// WrapListener accept wrapper; disk faults (stalls, torn writes) ride the
// store failpoint sites through Engage, which installs the package-wide
// store.SetGlobalFailpoint hook. Everything is off and zero-cost until a
// schedule is engaged: an idle process pays one nil atomic load per WAL
// failpoint site and nothing at all on the network path.
//
// Determinism: the schedule's probabilistic draws (loss) come from a
// counter-hashed stream seeded by Schedule.Seed, so two runs that issue the
// same sequence of matching requests see the same drops regardless of
// wall-clock jitter. Window activation is wall-clock relative to Start(),
// which is as deterministic as the workload driving it.
package chaos

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"itag/internal/store"
)

// Kind names a fault class.
type Kind uint8

const (
	// KindPartition drops every matching request with an unreachable
	// error — both directions unless OneWay.
	KindPartition Kind = iota + 1
	// KindLoss drops matching traffic with probability P. The request leg
	// (From→To) fails before dispatch; the response leg (a fault whose
	// From is the responder) lets the request execute and then loses the
	// reply — the classic acked-but-unconfirmed window.
	KindLoss
	// KindLatency delays matching traffic by Delay before dispatch.
	KindLatency
	// KindDiskStall sleeps Delay inside a WAL failpoint site, then lets
	// the write proceed (no crash): a hiccuping disk.
	KindDiskStall
	// KindTornWrite simulates process death at a WAL failpoint site
	// (default append:mid-batch), leaving a torn record for recovery.
	KindTornWrite
)

func (k Kind) String() string {
	switch k {
	case KindPartition:
		return "partition"
	case KindLoss:
		return "loss"
	case KindLatency:
		return "latency"
	case KindDiskStall:
		return "stall"
	case KindTornWrite:
		return "torn-write"
	}
	return "unknown"
}

// Fault is one scheduled fault. Zero windows mean "from Start, forever";
// host patterns are compared scheme-insensitively and "*" (or "") matches
// any host.
type Fault struct {
	Kind Kind

	// From/To scope network faults by traffic direction.
	From, To string
	// OneWay restricts a partition to the From→To direction.
	OneWay bool

	// Host scopes disk faults to DB paths containing this substring
	// ("*"/"" matches every store in the process).
	Host string
	// Site pins a disk fault to one failpoint site ("" = any site for
	// stalls, append:mid-batch for torn writes).
	Site store.Failpoint

	// After offsets activation from Schedule.Start; For bounds the active
	// window (<=0 = until the schedule stops).
	After, For time.Duration
	// Delay is the injected latency (KindLatency) or stall (KindDiskStall).
	Delay time.Duration
	// P is the drop probability for KindLoss (<=0 or >=1 means always).
	P float64
}

// Schedule is a seeded fault plan. It is inert until Start (and, for disk
// faults, Engage) is called; all methods are safe for concurrent use.
type Schedule struct {
	Seed   int64
	Faults []Fault

	start atomic.Int64  // unixnano of Start; 0 = inactive
	draws atomic.Uint64 // loss-draw counter (determinism)

	now func() time.Time // test override; nil = time.Now
}

// NewSchedule builds a schedule over the given faults.
func NewSchedule(seed int64, faults ...Fault) *Schedule {
	return &Schedule{Seed: seed, Faults: faults}
}

// Start arms the schedule: fault windows are measured from this instant.
// Starting an armed schedule rebases the windows.
func (s *Schedule) Start() {
	if s == nil {
		return
	}
	s.start.Store(s.clock().UnixNano())
}

// Stop disarms the schedule; every fault goes inactive immediately.
func (s *Schedule) Stop() {
	if s == nil {
		return
	}
	s.start.Store(0)
}

// Active reports whether the schedule has been started and not stopped.
func (s *Schedule) Active() bool { return s != nil && s.start.Load() != 0 }

func (s *Schedule) clock() time.Time {
	if s.now != nil {
		return s.now()
	}
	return time.Now()
}

// elapsed returns the time since Start, or false when disarmed.
func (s *Schedule) elapsed() (time.Duration, bool) {
	st := s.start.Load()
	if st == 0 {
		return 0, false
	}
	return s.clock().Sub(time.Unix(0, st)), true
}

func (f *Fault) activeAt(d time.Duration) bool {
	if d < f.After {
		return false
	}
	return f.For <= 0 || d < f.After+f.For
}

// hostOf canonicalizes an address for matching: scheme stripped, nothing
// else touched ("http://node-a" and "node-a" are the same host).
func hostOf(s string) string {
	if i := strings.Index(s, "://"); i >= 0 {
		return s[i+3:]
	}
	return s
}

func matchHost(pattern, host string) bool {
	p := hostOf(pattern)
	return p == "" || p == "*" || p == hostOf(host)
}

// draw returns the n-th value of the seeded uniform [0,1) stream. The
// counter is global to the schedule, so determinism holds as long as the
// sequence of draws is the same — which a seeded workload guarantees.
func (s *Schedule) draw() float64 {
	n := s.draws.Add(1)
	x := uint64(s.Seed)*0x9E3779B97F4A7C15 + n*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

func (f *Fault) lossHits(s *Schedule) bool {
	if f.P <= 0 || f.P >= 1 {
		return true
	}
	return s.draw() < f.P
}

// NetVerdict is the outcome of evaluating one traffic leg.
type NetVerdict struct {
	// Drop fails the leg: requests die before dispatch, responses are
	// discarded after the handler ran.
	Drop bool
	// Unreachable marks a Drop as a partition (host-unreachable error)
	// rather than packet loss (connection-reset error).
	Unreachable bool
	// Delay is the accumulated injected latency for the leg.
	Delay time.Duration
}

// Leg evaluates the faults matching traffic flowing from→to right now.
// The zero verdict means "deliver normally".
func (s *Schedule) Leg(from, to string) NetVerdict {
	var v NetVerdict
	if s == nil {
		return v
	}
	d, ok := s.elapsed()
	if !ok {
		return v
	}
	for i := range s.Faults {
		f := &s.Faults[i]
		if !f.activeAt(d) {
			continue
		}
		switch f.Kind {
		case KindPartition:
			fwd := matchHost(f.From, from) && matchHost(f.To, to)
			rev := !f.OneWay && matchHost(f.From, to) && matchHost(f.To, from)
			if fwd || rev {
				v.Drop, v.Unreachable = true, true
			}
		case KindLoss:
			if matchHost(f.From, from) && matchHost(f.To, to) && f.lossHits(s) {
				v.Drop = true
			}
		case KindLatency:
			if matchHost(f.From, from) && matchHost(f.To, to) {
				v.Delay += f.Delay
			}
		}
	}
	return v
}

// DiskVerdict is the outcome of evaluating one failpoint hit.
type DiskVerdict struct {
	// Stall sleeps this long before the write proceeds.
	Stall time.Duration
	// Crash simulates process death at the site (torn write).
	Crash bool
}

// Disk evaluates the disk faults matching a failpoint hit on the DB at
// path. The zero verdict lets the write through untouched.
func (s *Schedule) Disk(path string, site store.Failpoint) DiskVerdict {
	var v DiskVerdict
	if s == nil {
		return v
	}
	d, ok := s.elapsed()
	if !ok {
		return v
	}
	for i := range s.Faults {
		f := &s.Faults[i]
		if !f.activeAt(d) {
			continue
		}
		switch f.Kind {
		case KindDiskStall:
			if diskMatch(f, path, site, "") {
				v.Stall += f.Delay
			}
		case KindTornWrite:
			if diskMatch(f, path, site, store.FailAppendMid) {
				v.Crash = true
			}
		}
	}
	return v
}

// diskMatch scopes a disk fault: Host is a path substring ("*"/"" = all),
// Site an exact failpoint ("" = defSite, and a zero defSite matches any).
func diskMatch(f *Fault, path string, site, defSite store.Failpoint) bool {
	if f.Host != "" && f.Host != "*" && !strings.Contains(path, f.Host) {
		return false
	}
	want := f.Site
	if want == "" {
		want = defSite
	}
	return want == "" || want == site
}

// engageMu serializes Engage/Disengage: the store's global failpoint hook
// is process-wide, so only one schedule can own disk faults at a time.
var engageMu sync.Mutex

// Engage installs the schedule's disk faults as the process-wide store
// failpoint hook. It returns a release function that uninstalls the hook;
// callers must invoke it before engaging another schedule. Schedules with
// no disk faults may skip Engage entirely — network faults need only the
// Transport wrapper.
func (s *Schedule) Engage() (release func()) {
	engageMu.Lock()
	store.SetGlobalFailpoint(func(path string, site store.Failpoint) bool {
		v := s.Disk(path, site)
		if v.Stall > 0 {
			time.Sleep(v.Stall)
		}
		return v.Crash
	})
	return func() {
		store.SetGlobalFailpoint(nil)
		engageMu.Unlock()
	}
}
