package chaos

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"itag/internal/store"
)

// fakeClock pins the schedule's notion of now so window tests are exact.
type fakeClock struct{ at atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.at.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.at.Add(int64(d)) }

func clocked(s *Schedule) *fakeClock {
	c := &fakeClock{}
	c.at.Store(1) // non-zero so Start() arms
	s.now = c.now
	return c
}

func TestScheduleWindows(t *testing.T) {
	s := NewSchedule(1, Fault{Kind: KindPartition, From: "a", To: "b", After: 100 * time.Millisecond, For: 50 * time.Millisecond})
	clk := clocked(s)

	if v := s.Leg("a", "b"); v.Drop {
		t.Fatal("disarmed schedule dropped traffic")
	}
	s.Start()
	if v := s.Leg("a", "b"); v.Drop {
		t.Fatal("fault active before its window")
	}
	clk.advance(120 * time.Millisecond)
	if v := s.Leg("a", "b"); !v.Drop || !v.Unreachable {
		t.Fatalf("want partition drop inside window, got %+v", v)
	}
	if v := s.Leg("b", "a"); !v.Drop {
		t.Fatal("two-way partition did not drop the reverse leg")
	}
	if v := s.Leg("a", "c"); v.Drop {
		t.Fatal("partition leaked onto an unmatched host")
	}
	clk.advance(60 * time.Millisecond)
	if v := s.Leg("a", "b"); v.Drop {
		t.Fatal("fault still active after its window")
	}
	s.Stop()
	clk.advance(-60 * time.Millisecond)
	if v := s.Leg("a", "b"); v.Drop {
		t.Fatal("stopped schedule dropped traffic")
	}
}

func TestOneWayPartitionAndHostMatching(t *testing.T) {
	s := NewSchedule(1, Fault{Kind: KindPartition, From: "http://a", To: "b", OneWay: true})
	clocked(s)
	s.Start()
	if v := s.Leg("a", "b"); !v.Drop {
		t.Fatal("one-way partition did not drop the forward leg (scheme-insensitive match)")
	}
	if v := s.Leg("b", "a"); v.Drop {
		t.Fatal("one-way partition dropped the reverse leg")
	}
}

func TestLossDeterministicAndSeeded(t *testing.T) {
	run := func(seed int64) []bool {
		s := NewSchedule(seed, Fault{Kind: KindLoss, From: "a", To: "*", P: 0.5})
		clocked(s)
		s.Start()
		out := make([]bool, 64)
		for i := range out {
			out[i] = s.Leg("a", "b").Drop
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	drops := 0
	for _, d := range a {
		if d {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("p=0.5 loss dropped %d/%d — not probabilistic", drops, len(a))
	}
}

func TestLatencyAccumulates(t *testing.T) {
	s := NewSchedule(1,
		Fault{Kind: KindLatency, To: "b", Delay: 10 * time.Millisecond},
		Fault{Kind: KindLatency, From: "a", Delay: 5 * time.Millisecond},
	)
	clocked(s)
	s.Start()
	if got := s.Leg("a", "b").Delay; got != 15*time.Millisecond {
		t.Fatalf("want accumulated 15ms delay, got %v", got)
	}
}

// recordTransport notes whether the inner round trip ran.
type recordTransport struct{ calls atomic.Int64 }

func (rt *recordTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.calls.Add(1)
	rec := httptest.NewRecorder()
	rec.WriteString("ok")
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

func TestTransportLegs(t *testing.T) {
	newReq := func() *http.Request {
		req, _ := http.NewRequest(http.MethodGet, "http://b/x", nil)
		return req
	}

	t.Run("partition fails before dispatch", func(t *testing.T) {
		inner := &recordTransport{}
		s := NewSchedule(1, Fault{Kind: KindPartition, From: "a", To: "b"})
		clocked(s)
		s.Start()
		_, err := Wrap(inner, s, "a").RoundTrip(newReq())
		if !errors.Is(err, syscall.EHOSTUNREACH) {
			t.Fatalf("want EHOSTUNREACH, got %v", err)
		}
		if inner.calls.Load() != 0 {
			t.Fatal("partitioned request reached the inner transport")
		}
	})

	t.Run("response-leg loss runs the handler then loses the reply", func(t *testing.T) {
		inner := &recordTransport{}
		s := NewSchedule(1, Fault{Kind: KindLoss, From: "b", To: "a", P: 1})
		clocked(s)
		s.Start()
		_, err := Wrap(inner, s, "a").RoundTrip(newReq())
		var op *net.OpError
		if !errors.As(err, &op) || op.Op != "read" {
			t.Fatalf("want read-side reset, got %v", err)
		}
		if inner.calls.Load() != 1 {
			t.Fatal("response-leg loss must execute the request first")
		}
	})

	t.Run("disarmed schedule is a passthrough", func(t *testing.T) {
		inner := &recordTransport{}
		s := NewSchedule(1, Fault{Kind: KindPartition, From: "a", To: "b"})
		resp, err := Wrap(inner, s, "a").RoundTrip(newReq())
		if err != nil {
			t.Fatalf("passthrough failed: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		if string(body) != "ok" {
			t.Fatalf("unexpected body %q", body)
		}
	})
}

func TestDiskFaultsThroughGlobalFailpoint(t *testing.T) {
	dir := t.TempDir()
	// Group-commit mode: the WAL failpoint sites live on the batch writer
	// path (commitSync, the pre-group-commit baseline, has none).
	db, err := store.Open(dir+"/node-a.wal", store.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	s := NewSchedule(1,
		Fault{Kind: KindDiskStall, Host: "node-a", Delay: 30 * time.Millisecond, After: 0, For: 0},
	)
	clocked(s)
	release := s.Engage()
	defer release()

	put := func() error { return db.Put("t", "k", 1) }
	if err := put(); err != nil {
		t.Fatalf("write with disarmed schedule: %v", err)
	}
	s.Start()
	t0 := time.Now()
	if err := put(); err != nil {
		t.Fatalf("stalled write failed: %v", err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("stall not applied: write took %v", d)
	}

	// Swap in a torn-write fault: the next append dies mid-batch and the
	// store goes sticky-crashed, exactly like the per-DB failpoint.
	s.Faults = []Fault{{Kind: KindTornWrite, Host: "node-a"}}
	if err := put(); !errors.Is(err, store.ErrCrashed) {
		t.Fatalf("want ErrCrashed from torn write, got %v", err)
	}
	s.Stop()

	// Other stores are untouched by a host-scoped fault.
	db2, err := store.Open(dir+"/node-b.wal", store.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s.Start()
	if err := db2.Put("t", "k", 1); err != nil {
		t.Fatalf("host-scoped fault leaked to another store: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("seed=42;after=5s,for=2s,partition,from=*,to=node-b;latency=30ms,to=node-c;loss=0.25,from=node-a,oneway;stall=100ms,host=node-a,site=append:mid-batch;torn-write,host=node-b")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 {
		t.Fatalf("seed = %d", s.Seed)
	}
	if len(s.Faults) != 5 {
		t.Fatalf("want 5 faults, got %d", len(s.Faults))
	}
	want := []Kind{KindPartition, KindLatency, KindLoss, KindDiskStall, KindTornWrite}
	for i, k := range want {
		if s.Faults[i].Kind != k {
			t.Fatalf("fault %d kind = %v, want %v", i, s.Faults[i].Kind, k)
		}
	}
	if f := s.Faults[0]; f.After != 5*time.Second || f.For != 2*time.Second || f.To != "node-b" {
		t.Fatalf("partition clause parsed wrong: %+v", f)
	}
	if f := s.Faults[3]; f.Site != store.FailAppendMid || f.Delay != 100*time.Millisecond {
		t.Fatalf("stall clause parsed wrong: %+v", f)
	}

	for _, bad := range []string{
		"",
		"seed=7",
		"loss=1.5,from=a",
		"latency=fast",
		"after=1s",
		"bogus=1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}
