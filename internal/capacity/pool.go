package capacity

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"itag/internal/errs"
)

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed error = errs.New(errs.ComponentCore, errs.CategoryCanceled, "worker pool is closed").WithCode("pool_closed")

// PoolConfig parameterises an autoscaling Pool.
type PoolConfig struct {
	// Min is the worker floor. 0 means the pool scales all the way to
	// zero goroutines when idle.
	Min int
	// Max is the worker ceiling (default 8, matching the old fixed pool).
	Max int
	// Idle is how long a worker above Min waits for work before exiting
	// (default 250ms).
	Idle time.Duration
	// Queue is the task buffer size (default 4·Max, min 64). Submit
	// blocks when the buffer is full — backpressure, not an error.
	Queue int
}

func (c *PoolConfig) fill() {
	if c.Max < 1 {
		c.Max = 8
	}
	if c.Min < 0 {
		c.Min = 0
	}
	if c.Min > c.Max {
		c.Min = c.Max
	}
	if c.Idle <= 0 {
		c.Idle = 250 * time.Millisecond
	}
	if c.Queue < 1 {
		c.Queue = 4 * c.Max
		if c.Queue < 64 {
			c.Queue = 64
		}
	}
}

// Pool is an autoscaling worker pool: it spawns workers (up to a
// dynamic limit ≤ Max) when submitted work outruns the idle workers,
// and workers above Min exit after sitting idle — with Min 0 the pool
// scales to zero goroutines between bursts. The capacity governor can
// lower the dynamic limit at runtime to keep background work from
// starving the serving path.
type Pool struct {
	cfg PoolConfig

	tasks chan func(context.Context)
	ctx   context.Context
	stop  context.CancelFunc
	wg    sync.WaitGroup

	mu      sync.Mutex
	workers int
	limit   int
	closed  bool

	waiting    atomic.Int64 // workers parked in select
	busy       atomic.Int64 // workers currently running a task
	completed  atomic.Uint64
	scaleUps   atomic.Uint64
	scaleDowns atomic.Uint64
}

// PoolStats is a snapshot of the pool for metrics and tests.
type PoolStats struct {
	Workers    int    // live worker goroutines
	Busy       int    // workers currently running a task
	QueueDepth int    // tasks waiting in the buffer
	Limit      int    // current dynamic worker ceiling
	Completed  uint64 // tasks finished since creation
	ScaleUps   uint64 // workers spawned
	ScaleDowns uint64 // workers retired by the idle timeout
}

// NewPool builds and starts an autoscaling pool. Min workers are spawned
// eagerly; the rest appear on demand.
func NewPool(cfg PoolConfig) *Pool {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		cfg:   cfg,
		tasks: make(chan func(context.Context), cfg.Queue),
		ctx:   ctx,
		stop:  cancel,
		limit: cfg.Max,
	}
	p.mu.Lock()
	for i := 0; i < cfg.Min; i++ {
		p.spawnLocked()
	}
	p.mu.Unlock()
	return p
}

// Submit enqueues a task and scales the pool up if no idle worker is
// around to take it. The task receives the pool's lifetime context,
// which is cancelled by Close; long tasks should observe it. Submit
// blocks when the queue buffer is full and returns ErrPoolClosed after
// Close.
func (p *Pool) Submit(task func(context.Context)) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	p.mu.Unlock()

	select {
	case p.tasks <- task:
	case <-p.ctx.Done():
		return ErrPoolClosed
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		// Close raced the enqueue; the drain loop in Close handles it.
		return ErrPoolClosed
	}
	// Spawn when the queued work exceeds the workers free to take it.
	if p.workers < p.limit && int(p.waiting.Load()) < len(p.tasks) {
		p.spawnLocked()
	}
	return nil
}

// spawnLocked starts one worker; callers hold p.mu.
func (p *Pool) spawnLocked() {
	p.workers++
	p.scaleUps.Add(1)
	p.wg.Add(1)
	go p.worker()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	idle := time.NewTimer(p.cfg.Idle)
	defer idle.Stop()
	for {
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(p.cfg.Idle)

		p.waiting.Add(1)
		select {
		case task := <-p.tasks:
			p.waiting.Add(-1)
			p.busy.Add(1)
			task(p.ctx)
			p.busy.Add(-1)
			p.completed.Add(1)
			// Honor a lowered dynamic limit promptly: retire instead of
			// looping back for more work once we're over it.
			p.mu.Lock()
			if p.workers > p.limit && p.workers > p.cfg.Min && len(p.tasks) == 0 {
				p.workers--
				p.mu.Unlock()
				p.scaleDowns.Add(1)
				return
			}
			p.mu.Unlock()
		case <-idle.C:
			p.waiting.Add(-1)
			p.mu.Lock()
			// Stay when shrinking would drop below Min, or when work
			// snuck into the queue between the timeout and the lock —
			// exiting then could strand a task until the next Submit.
			if p.workers <= p.cfg.Min && !p.closed || len(p.tasks) > 0 {
				p.mu.Unlock()
				continue
			}
			p.workers--
			p.mu.Unlock()
			p.scaleDowns.Add(1)
			return
		case <-p.ctx.Done():
			p.waiting.Add(-1)
			p.mu.Lock()
			p.workers--
			p.mu.Unlock()
			return
		}
	}
}

// SetLimit adjusts the dynamic worker ceiling within [1, Max]. Lowering
// it does not kill running workers; the excess drains via idle timeouts.
func (p *Pool) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	if n > p.cfg.Max {
		n = p.cfg.Max
	}
	p.mu.Lock()
	p.limit = n
	p.mu.Unlock()
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	workers, limit := p.workers, p.limit
	p.mu.Unlock()
	return PoolStats{
		Workers:    workers,
		Busy:       int(p.busy.Load()),
		QueueDepth: len(p.tasks),
		Limit:      limit,
		Completed:  p.completed.Load(),
		ScaleUps:   p.scaleUps.Load(),
		ScaleDowns: p.scaleDowns.Load(),
	}
}

// Close stops the pool: no new submissions, the lifetime context is
// cancelled (running tasks should notice and return), queued-but-unrun
// tasks are dropped, and Close blocks until every worker has exited.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.stop()
	p.wg.Wait()
	// Drain anything left in the buffer so submitters blocked on a full
	// queue (already unblocked by ctx.Done) don't leave dangling tasks.
	for {
		select {
		case <-p.tasks:
		default:
			return
		}
	}
}
