package capacity

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterProperty hammers the limiter from many goroutines while the
// ceiling moves, and checks the two invariants the serving path depends
// on: admitted in-flight concurrency never exceeds the largest ceiling
// ever set, and every offered request is either admitted or shed —
// admitted + shed = offered, nothing lost, nothing double-counted.
func TestLimiterProperty(t *testing.T) {
	const (
		goroutines = 16
		perG       = 2000
		maxLimit   = 24
	)
	l := NewLimiter(maxLimit)

	var (
		offered  atomic.Uint64
		admitted atomic.Uint64
		shed     atomic.Uint64
		peak     atomic.Int64 // max concurrent holders ever observed
		holders  atomic.Int64
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				if i%100 == 0 {
					// Move the ceiling around mid-flight (the governor
					// does this concurrently with admissions).
					l.SetLimit(1 + rng.Intn(maxLimit))
				}
				offered.Add(1)
				release, ok := l.TryAcquire()
				if !ok {
					shed.Add(1)
					continue
				}
				admitted.Add(1)
				cur := holders.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				if i%7 == 0 {
					time.Sleep(time.Microsecond)
				}
				holders.Add(-1)
				release()
			}
		}(int64(g + 1))
	}
	wg.Wait()

	if got := admitted.Load() + shed.Load(); got != offered.Load() {
		t.Errorf("admitted %d + shed %d = %d, want offered %d",
			admitted.Load(), shed.Load(), got, offered.Load())
	}
	if l.Admitted() != admitted.Load() || l.Shed() != shed.Load() {
		t.Errorf("limiter counters (%d adm, %d shed) disagree with ground truth (%d, %d)",
			l.Admitted(), l.Shed(), admitted.Load(), shed.Load())
	}
	if p := peak.Load(); p > maxLimit {
		t.Errorf("peak concurrency %d exceeded the largest ceiling %d", p, maxLimit)
	}
	if l.Inflight() != 0 {
		t.Errorf("inflight = %d after all releases", l.Inflight())
	}
}

// TestLimiterCeilingRespected pins the strict form of the invariant with
// a fixed ceiling: concurrency never exceeds the knee estimate.
func TestLimiterCeilingRespected(t *testing.T) {
	const limit = 4
	l := NewLimiter(limit)
	var holders, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				release, ok := l.TryAcquire()
				if !ok {
					continue
				}
				cur := holders.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				holders.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Errorf("peak concurrency %d exceeds fixed ceiling %d", p, limit)
	}
}

// TestLimiterReleaseIdempotent: calling release twice must not free two
// slots (a double-release would silently raise effective capacity).
func TestLimiterReleaseIdempotent(t *testing.T) {
	l := NewLimiter(2)
	r1, ok1 := l.TryAcquire()
	r2, ok2 := l.TryAcquire()
	if !ok1 || !ok2 {
		t.Fatal("setup: both acquires should admit")
	}
	r1()
	r1() // second call must be a no-op
	if got := l.Inflight(); got != 1 {
		t.Errorf("inflight after double release = %d, want 1", got)
	}
	r2()
	if got := l.Inflight(); got != 0 {
		t.Errorf("inflight = %d, want 0", got)
	}
}

// TestLimiterClampsAndHints covers the defensive edges: ceilings below 1
// clamp (a zero-admission limiter can never recover), and Retry-After
// hints never go below 1s.
func TestLimiterClampsAndHints(t *testing.T) {
	l := NewLimiter(0)
	if l.Limit() != 1 {
		t.Errorf("limit = %d, want clamp to 1", l.Limit())
	}
	l.SetLimit(-5)
	if l.Limit() != 1 {
		t.Errorf("limit = %d after SetLimit(-5), want 1", l.Limit())
	}
	l.SetRetryAfter(0)
	if l.RetryAfter() != time.Second {
		t.Errorf("retryAfter = %v, want 1s floor", l.RetryAfter())
	}
	l.SetRetryAfter(3 * time.Second)
	if l.RetryAfter() != 3*time.Second {
		t.Errorf("retryAfter = %v, want 3s", l.RetryAfter())
	}
}
