// Package capacity implements adaptive capacity control for the serving
// path: a queueing model fitted online from the latency histograms, a
// saturation limiter that sheds load past the model's knee, and an
// autoscaling worker pool sized to a latency SLO.
//
// The model follows the Server{Alpha,Beta} linearisation used by
// batch-serving autoscalers: per-request latency grows roughly linearly
// with the number of requests sharing the server, so
//
//	latency(c) ≈ Alpha + Beta·(c-1)
//
// where Alpha is the base service time at concurrency 1 and Beta is the
// marginal latency each additional concurrent request adds. The knee —
// the highest concurrency whose predicted latency still meets the SLO —
// falls out in closed form, which is what makes the model cheap enough
// to refit on the request path.
package capacity

import "math"

// Model is a fitted Server{Alpha,Beta} latency model. Both coefficients
// are in seconds; Beta is per unit of concurrency.
type Model struct {
	Alpha float64 // base latency at concurrency 1
	Beta  float64 // marginal latency per additional concurrent request
}

// Latency predicts the per-request latency at concurrency c. Concurrency
// below 1 is clamped: a lone request cannot run faster than Alpha.
func (m Model) Latency(c float64) float64 {
	if c < 1 {
		c = 1
	}
	return m.Alpha + m.Beta*(c-1)
}

// Knee returns the highest concurrency at which the predicted latency
// still meets slo (seconds). When even a single request exceeds the SLO
// the knee is 1 (shedding to zero would deadlock recovery: the model can
// only learn the server got faster by letting some traffic through).
// When Beta is zero or negative the model has seen no evidence of
// saturation and the knee is unbounded (+Inf); callers clamp it to their
// configured maximum.
func (m Model) Knee(slo float64) float64 {
	if slo <= m.Alpha {
		return 1
	}
	if m.Beta <= 0 {
		return math.Inf(1)
	}
	return 1 + (slo-m.Alpha)/m.Beta
}
