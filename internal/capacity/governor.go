package capacity

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// RouteSource is the slice of the metrics registry the governor samples.
// *api.Metrics satisfies it; tests substitute synthetic sources.
type RouteSource interface {
	// BucketBounds reports the finite histogram bucket upper bounds,
	// ascending; observations above the last bound land in an implicit
	// +Inf overflow slot.
	BucketBounds() []time.Duration
	// RouteBuckets snapshots a route's cumulative per-bucket counts —
	// len(BucketBounds())+1 slots, the last being the +Inf overflow.
	// ok is false when the route is unknown.
	RouteBuckets(route string) ([]uint64, bool)
	// RouteObservations reports a route's cumulative request count and
	// latency sum.
	RouteObservations(route string) (count uint64, sum time.Duration, ok bool)
	// InFlight reports requests currently being served across all routes.
	InFlight() int64
}

// GovernorConfig parameterises a Governor.
type GovernorConfig struct {
	// Routes are the metric labels of the admission-controlled routes;
	// each gets its own estimator and the tightest knee wins.
	Routes []string
	// SLO is the latency target the knee is solved against.
	SLO time.Duration
	// Quantile of the latency histograms fed to the estimators
	// (default 0.99 — the SLO is a p99 target).
	Quantile float64
	// MaxConcurrency caps the knee when the model sees no saturation.
	// Default 1024.
	MaxConcurrency int
	// MinInterval throttles refits; Maybe() is called on every request
	// release but refits at most once per interval. Default 200ms.
	MinInterval time.Duration
	// Decay is the estimator EWMA weight (default 0.2).
	Decay float64
	// Headroom is the fraction of the SLO the model solves the knee
	// against (default 0.85). The regression fits mean latency; admitting
	// until the predicted MEAN hits the SLO would park the tail right on
	// it, so the knee targets Headroom·SLO and leaves the gap to absorb
	// the mean-to-p99 spread.
	Headroom float64
}

func (c *GovernorConfig) fill() {
	if c.Quantile <= 0 || c.Quantile > 1 {
		c.Quantile = 0.99
	}
	if c.MaxConcurrency < 1 {
		c.MaxConcurrency = 1024
	}
	if c.MinInterval <= 0 {
		c.MinInterval = 200 * time.Millisecond
	}
	if c.SLO <= 0 {
		c.SLO = time.Second
	}
	if c.Headroom <= 0 || c.Headroom > 1 {
		c.Headroom = 0.85
	}
}

// Governor closes the control loop: it samples the route latency
// histograms, refits one estimator per route, solves each model for the
// SLO knee, and installs the tightest result on the Limiter.
//
// The histograms are cumulative counters, so the governor diffs
// successive snapshots and reads only the window since the previous
// refit. Fitting on the all-time distribution would make overload
// sticky: one heavy transient pins the cumulative p99 at the bad tail
// long after the queue drains, the "observed over SLO" branch below
// keeps firing, and the ceiling ratchets to one and stays there. Within
// the window, the model fits the MEAN latency (continuous, from the
// count/sum deltas) and solves the knee against Headroom·SLO, while the
// bucketed tail quantile guards the SLO directly — see Refresh.
//
// Two safeguards wrap the raw model output:
//
//   - Multiplicative decrease on direct SLO evidence: when a route's
//     observed quantile already exceeds the SLO, the ceiling drops
//     immediately to inflight·SLO/observed regardless of what the model
//     extrapolates — the model needs several samples to catch up, the
//     overload is happening now.
//   - Bounded growth: the ceiling rises at most 25% per refresh, so one
//     optimistic fit after a quiet period cannot fling the gate open.
//
// Refresh is driven lazily from the request path (Maybe) rather than a
// background goroutine, so the governor has no lifecycle to manage.
type Governor struct {
	cfg     GovernorConfig
	src     RouteSource
	limiter *Limiter

	lastRefresh atomic.Int64 // unixnano of the last refit

	mu      sync.Mutex
	bounds  []time.Duration // histogram bucket bounds, cached at construction
	est     map[string]*Estimator
	prev    map[string][]uint64    // per-route bucket snapshot at last refit
	prevObs map[string]obsSnapshot // per-route count/sum at last refit
	winC    float64                // inflight at the last refit: the concurrency the current window's completions ran under
	// One multiplicative decrease per congestion event: after a shrink
	// the next windows still drain requests queued BEFORE it, so their
	// tails don't indict the new ceiling. shrinkTail remembers the
	// overshoot that triggered the shrink; equal-or-better tails hold
	// the ceiling (at most heldMax windows) instead of shrinking again.
	shrinkTail float64
	held       int
}

// heldMax bounds how many consecutive violating windows may ride out a
// previous shrink before fresh evidence forces another one.
const heldMax = 2

// obsSnapshot is a route's cumulative observation counters at one refit.
type obsSnapshot struct {
	count uint64
	sum   time.Duration
}

// NewGovernor wires a governor over a metrics source and the limiter it
// steers. The limiter starts at MaxConcurrency (fail open: shedding
// before any evidence of saturation would be a self-inflicted outage).
func NewGovernor(cfg GovernorConfig, src RouteSource, limiter *Limiter) *Governor {
	cfg.fill()
	limiter.SetLimit(cfg.MaxConcurrency)
	limiter.SetRetryAfter(retryAfterFor(cfg.SLO))
	g := &Governor{
		cfg:     cfg,
		src:     src,
		limiter: limiter,
		bounds:  src.BucketBounds(),
		est:     make(map[string]*Estimator, len(cfg.Routes)),
		prev:    make(map[string][]uint64, len(cfg.Routes)),
		prevObs: make(map[string]obsSnapshot, len(cfg.Routes)),
	}
	for _, r := range cfg.Routes {
		g.est[r] = NewEstimator(cfg.Decay)
	}
	return g
}

// Limiter returns the limiter this governor steers.
func (g *Governor) Limiter() *Limiter { return g.limiter }

// Maybe refreshes the model if at least MinInterval has elapsed since
// the last refresh. It is safe to call from many goroutines; exactly one
// wins the CAS and does the work.
func (g *Governor) Maybe(now time.Time) {
	last := g.lastRefresh.Load()
	if now.UnixNano()-last < int64(g.cfg.MinInterval) {
		return
	}
	if !g.lastRefresh.CompareAndSwap(last, now.UnixNano()) {
		return
	}
	g.Refresh()
}

// Refresh refits every route estimator from the histograms and installs
// the resulting knee on the limiter. Exposed for tests and for callers
// that drive their own cadence.
func (g *Governor) Refresh() {
	g.mu.Lock()
	defer g.mu.Unlock()

	inflight := float64(g.src.InFlight())
	if inflight < 1 {
		inflight = 1
	}
	// The window's completions experienced the concurrency in effect when
	// the window OPENED, not the current sample — pairing them with the
	// post-refit inflight would flatten the fitted slope during growth
	// and inflate the knee.
	winC := g.winC
	if winC < 1 {
		winC = inflight
	}
	g.winC = inflight

	knee := math.Inf(1)
	worstOver := 0.0 // worst observed/SLO ratio across routes already over
	sampled := false
	for _, route := range g.cfg.Routes {
		counts, ok := g.src.RouteBuckets(route)
		if !ok {
			continue
		}
		window, n := diffBuckets(counts, g.prev[route])
		g.prev[route] = counts
		count, sum, _ := g.src.RouteObservations(route)
		po := g.prevObs[route]
		g.prevObs[route] = obsSnapshot{count: count, sum: sum}
		if n == 0 {
			continue // no new traffic since last refit: nothing to learn
		}
		sampled = true
		q, ok := windowQuantile(g.bounds, window, g.cfg.Quantile)
		if !ok {
			continue
		}
		tail := q.Seconds()
		// The regression needs a continuous latency signal: inside one
		// histogram bucket every quantile reads the same bound, the
		// fitted slope collapses to zero and the knee escapes to +Inf.
		// The window MEAN (count/sum deltas) has full resolution, so the
		// model fits mean latency; the bucketed tail only guards the SLO.
		mean := tail
		if count > po.count && sum > po.sum {
			mean = (sum - po.sum).Seconds() / float64(count-po.count)
		}
		if over := tail / g.cfg.SLO.Seconds(); over > worstOver {
			worstOver = over
		}
		// Only healthy windows feed the model: windows at or over the SLO
		// mix latencies of requests queued under the OLD ceiling with the
		// shrunken concurrency of the moment, and regressing on those
		// pairs corrupts both intercept and slope. The fitted knee still
		// applies below either way — the model just doesn't learn from
		// tainted windows.
		healthy := tail < g.cfg.SLO.Seconds()
		if healthy {
			g.est[route].Observe(winC, mean)
		}
		if m, ok := g.est[route].Model(); ok {
			// Validate the model against what is happening right now:
			// after a transient overload the EW slope can pin the knee
			// low long after the server recovered (variance and
			// covariance decay together, so the ratio survives). If the
			// model predicts more than twice the latency actually being
			// observed at this concurrency — and the route is healthy —
			// the model is stale-pessimistic; skip its knee and let the
			// bounded growth below probe the gate back open.
			if healthy && m.Latency(winC) > 2*mean {
				continue
			}
			if k := m.Knee(g.cfg.Headroom * g.cfg.SLO.Seconds()); k < knee {
				knee = k
			}
		}
	}

	if !sampled {
		// Nothing new observed: leave the ceiling alone. Idle refreshes
		// must not crank the gate open (or shut) on stale evidence.
		return
	}

	cur := float64(g.limiter.Limit())
	target := knee
	if worstOver > 1 {
		if g.shrinkTail > 0 && worstOver <= g.shrinkTail && g.held < heldMax {
			// Same congestion event as the last shrink: the window is
			// draining requests admitted under the old ceiling. Hold.
			g.held++
			target = cur
		} else {
			// Direct SLO violation: shrink multiplicatively off the live
			// inflight count, don't wait for the regression to catch up.
			md := inflight / worstOver
			if md < target {
				target = md
			}
			g.shrinkTail = worstOver
			g.held = 0
		}
	} else {
		g.shrinkTail = 0
		g.held = 0
	}
	if math.IsInf(target, 1) {
		target = float64(g.cfg.MaxConcurrency)
	}
	// Bounded growth, immediate shrink.
	if grown := cur * 1.25; target > grown && target > cur+1 {
		target = math.Max(grown, cur+1)
	}
	n := int(math.Floor(target))
	if n > g.cfg.MaxConcurrency {
		n = g.cfg.MaxConcurrency
	}
	g.limiter.SetLimit(n)
}

// Models snapshots the fitted per-route models (routes without enough
// samples are omitted) — surfaced in metrics and by tests.
func (g *Governor) Models() map[string]Model {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]Model, len(g.est))
	for route, e := range g.est {
		if m, ok := e.Model(); ok {
			out[route] = m
		}
	}
	return out
}

// diffBuckets subtracts a previous cumulative bucket snapshot from the
// current one, returning the per-bucket counts of the window in between
// and their total. A nil/short prev (first refit, route appeared late)
// counts from zero; a shrinking counter (registry reset) clamps to zero
// rather than wrapping.
func diffBuckets(cur, prev []uint64) (window []uint64, total uint64) {
	window = make([]uint64, len(cur))
	for i, c := range cur {
		if i < len(prev) && prev[i] <= c {
			c -= prev[i]
		} else if i < len(prev) {
			c = 0
		}
		window[i] = c
		total += c
	}
	return window, total
}

// windowQuantile reports the q-quantile of a window's bucket counts as
// the winning bucket's upper bound — deliberately conservative: rounding
// each observation up makes the fitted model over-predict latency a
// little, which errs the knee toward shedding slightly early rather than
// blowing the SLO. The +Inf overflow slot reports the last finite bound
// (the histogram cannot resolve beyond it).
func windowQuantile(bounds []time.Duration, counts []uint64, q float64) (time.Duration, bool) {
	if q <= 0 || q > 1 || len(bounds) == 0 {
		return 0, false
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, false
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(bounds) {
				return bounds[i], true
			}
			return bounds[len(bounds)-1], true
		}
	}
	return bounds[len(bounds)-1], true
}

// retryAfterFor picks the Retry-After hint for an SLO: long enough for
// the queue to drain one SLO's worth of work, never below one second
// (the header granularity).
func retryAfterFor(slo time.Duration) time.Duration {
	d := 2 * slo
	if d < time.Second {
		d = time.Second
	}
	return d
}
