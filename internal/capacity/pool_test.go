package capacity

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for: %s", msg)
}

// TestPoolRunsEverything: every submitted task runs exactly once.
func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(PoolConfig{Min: 0, Max: 4, Idle: 50 * time.Millisecond})
	defer p.Close()
	const n = 500
	var ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := p.Submit(func(context.Context) {
			ran.Add(1)
			wg.Done()
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	if ran.Load() != n {
		t.Errorf("ran %d tasks, want %d", ran.Load(), n)
	}
	if st := p.Stats(); st.Completed != n {
		t.Errorf("completed counter = %d, want %d", st.Completed, n)
	}
}

// TestPoolScaleToZeroAndBack is the race test the ISSUE calls for: with
// Min 0, workers must all exit after the idle timeout (scale to zero),
// and a subsequent burst must be admitted and served without any
// restart. Run under -race this also shakes out unsynchronised state in
// the spawn/retire paths.
func TestPoolScaleToZeroAndBack(t *testing.T) {
	p := NewPool(PoolConfig{Min: 0, Max: 8, Idle: 20 * time.Millisecond})
	defer p.Close()

	burst := func(n int) {
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			if err := p.Submit(func(context.Context) {
				time.Sleep(time.Millisecond)
				wg.Done()
			}); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
		wg.Wait()
	}

	burst(64)
	if st := p.Stats(); st.ScaleUps == 0 {
		t.Error("burst did not scale the pool up")
	}
	// Scale to zero: all workers exit once idle.
	waitFor(t, 2*time.Second, func() bool { return p.Stats().Workers == 0 },
		"workers to drain to zero after idle timeout")

	// Re-admission after zero: the next burst must spawn fresh workers.
	before := p.Stats().ScaleUps
	burst(64)
	if st := p.Stats(); st.ScaleUps <= before {
		t.Error("post-zero burst did not spawn new workers")
	}
	if got := p.Stats().Completed; got != 128 {
		t.Errorf("completed = %d, want 128", got)
	}
}

// TestPoolConcurrentSubmitAndScale races submitters against the idle
// reaper and a goroutine thrashing the dynamic limit — the -race
// companion to the scale-to-zero test.
func TestPoolConcurrentSubmitAndScale(t *testing.T) {
	p := NewPool(PoolConfig{Min: 0, Max: 8, Idle: time.Millisecond})
	defer p.Close()

	stop := make(chan struct{})
	var thrash sync.WaitGroup
	thrash.Add(1)
	go func() {
		defer thrash.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				p.SetLimit(1 + i%8)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	const submitters, each = 8, 200
	var done sync.WaitGroup
	var ran atomic.Int64
	done.Add(submitters * each)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := p.Submit(func(context.Context) {
					ran.Add(1)
					done.Done()
				}); err != nil {
					t.Errorf("submit: %v", err)
					done.Done()
				}
				if i%50 == 0 {
					time.Sleep(time.Millisecond) // let the reaper bite mid-stream
				}
			}
		}()
	}
	wg.Wait()
	done.Wait()
	close(stop)
	thrash.Wait()
	if ran.Load() != submitters*each {
		t.Errorf("ran %d, want %d", ran.Load(), submitters*each)
	}
	if st := p.Stats(); st.Workers > st.Limit && st.QueueDepth == 0 {
		t.Errorf("workers %d linger above limit %d with empty queue", st.Workers, st.Limit)
	}
}

// TestPoolMinFloorHolds: with Min > 0 the pool never reaps below the
// floor, so latecomer tasks find a warm worker.
func TestPoolMinFloorHolds(t *testing.T) {
	p := NewPool(PoolConfig{Min: 2, Max: 4, Idle: 10 * time.Millisecond})
	defer p.Close()
	if st := p.Stats(); st.Workers != 2 {
		t.Fatalf("eager floor: workers = %d, want 2", st.Workers)
	}
	time.Sleep(100 * time.Millisecond) // many idle periods
	if st := p.Stats(); st.Workers != 2 {
		t.Errorf("floor violated: workers = %d after idling, want 2", st.Workers)
	}
}

// TestPoolClose: Submit after Close errors, running tasks see the
// cancelled context, and Close returns only when workers exited.
func TestPoolClose(t *testing.T) {
	p := NewPool(PoolConfig{Min: 0, Max: 2, Idle: time.Second})
	started := make(chan struct{})
	canceled := make(chan struct{})
	if err := p.Submit(func(ctx context.Context) {
		close(started)
		<-ctx.Done()
		close(canceled)
	}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	p.Close()
	select {
	case <-canceled:
	default:
		t.Error("Close returned before the running task observed cancellation")
	}
	if err := p.Submit(func(context.Context) {}); err != ErrPoolClosed {
		t.Errorf("Submit after Close = %v, want ErrPoolClosed", err)
	}
	if st := p.Stats(); st.Workers != 0 {
		t.Errorf("workers = %d after Close, want 0", st.Workers)
	}
}
