package capacity

import (
	"math"
	"sync"
)

// Estimator fits the Server{Alpha,Beta} model online from
// (concurrency, latency) samples using exponentially weighted linear
// regression: it maintains EWMA means, variance and covariance of the
// two series and recovers the slope as cov/var. Old traffic decays away,
// so the model tracks the server as cache state, dataset size or
// hardware contention drift.
//
// One Estimator serves one key — a route label on the serving path, a
// project ID when callers want per-project service times. Keyed fan-out
// lives in the Governor.
type Estimator struct {
	mu    sync.Mutex
	decay float64 // weight of each new sample, in (0, 1]

	seen  int     // raw sample count (gates model readiness)
	meanC float64 // EWMA of concurrency
	meanL float64 // EWMA of latency (seconds)
	varC  float64 // EW variance of concurrency
	covCL float64 // EW covariance of (concurrency, latency)
}

// estimatorMinSamples is how many samples an Estimator needs before it
// reports a model: below this the covariance is mostly noise.
const estimatorMinSamples = 5

// NewEstimator builds an estimator. decay is the weight of each new
// sample (0 < decay ≤ 1); out-of-range values fall back to 0.2, i.e. a
// memory of roughly the last 5 samples.
func NewEstimator(decay float64) *Estimator {
	if decay <= 0 || decay > 1 {
		decay = 0.2
	}
	return &Estimator{decay: decay}
}

// Observe feeds one sample: the server held roughly `concurrency`
// requests in flight while per-request latency was `latency` seconds.
// Non-finite or negative inputs are dropped; concurrency below 1 is
// clamped (the sample exists, so at least one request was running).
func (e *Estimator) Observe(concurrency, latency float64) {
	if math.IsNaN(concurrency) || math.IsInf(concurrency, 0) ||
		math.IsNaN(latency) || math.IsInf(latency, 0) || latency < 0 {
		return
	}
	if concurrency < 1 {
		concurrency = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	a := e.decay
	if e.seen == 0 {
		e.meanC, e.meanL = concurrency, latency
		e.seen = 1
		return
	}
	dC := concurrency - e.meanC
	dL := latency - e.meanL
	e.meanC += a * dC
	e.meanL += a * dL
	// Standard EW second-moment updates (West 1979 adapted to EWMA):
	// shrink the old moment, add the cross-term of the new deviation.
	e.varC = (1 - a) * (e.varC + a*dC*dC)
	e.covCL = (1 - a) * (e.covCL + a*dC*dL)
	e.seen++
}

// Samples reports the number of samples absorbed.
func (e *Estimator) Samples() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seen
}

// Model returns the fitted model. ok is false until enough samples have
// arrived. When the concurrency series has no spread (variance ≈ 0) the
// slope is unidentifiable; Beta is reported as 0 — "no saturation
// evidence" — and Alpha as the latency mean, which keeps the knee
// unbounded rather than inventing a slope from noise.
func (e *Estimator) Model() (Model, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.seen < estimatorMinSamples {
		return Model{}, false
	}
	const epsVar = 1e-9
	if e.varC < epsVar {
		return Model{Alpha: e.meanL}, true
	}
	beta := e.covCL / e.varC
	if beta < 0 {
		// Latency falling as concurrency rises is warm-up noise, not a
		// queueing effect; a negative slope would predict infinite
		// capacity. Treat as no evidence.
		beta = 0
	}
	alpha := e.meanL - beta*(e.meanC-1)
	if alpha < 0 {
		alpha = 0
	}
	return Model{Alpha: alpha, Beta: beta}, true
}
