package capacity

import (
	"sync/atomic"
	"time"
)

// Limiter is the saturation gate in front of the expensive routes: it
// admits requests while in-flight concurrency is below the current knee
// and sheds the rest. Admission is a single CAS loop — no locks, no
// channels — so the cost on the hot path is a few atomic operations.
//
// The limit is dynamic: the Governor refits the queueing model and calls
// SetLimit as the estimate moves. Shed callers are told how long to back
// off via RetryAfter, which the serving layer forwards as the HTTP
// Retry-After header.
type Limiter struct {
	limit      atomic.Int64 // current knee (admission ceiling), ≥ 1
	inflight   atomic.Int64
	admitted   atomic.Uint64
	shed       atomic.Uint64
	retryAfter atomic.Int64 // nanoseconds to advertise to shed callers
}

// NewLimiter builds a limiter with an initial admission ceiling.
// Ceilings below 1 are clamped to 1: a limiter that admits nothing can
// never observe the server recovering.
func NewLimiter(limit int) *Limiter {
	l := &Limiter{}
	l.SetLimit(limit)
	l.SetRetryAfter(time.Second)
	return l
}

// TryAcquire attempts to admit one request. On admission it returns a
// release func (call exactly once when the request finishes) and true.
// On shed it returns (nil, false) and the shed counter advances.
func (l *Limiter) TryAcquire() (release func(), ok bool) {
	for {
		cur := l.inflight.Load()
		if cur >= l.limit.Load() {
			l.shed.Add(1)
			return nil, false
		}
		if l.inflight.CompareAndSwap(cur, cur+1) {
			l.admitted.Add(1)
			var done atomic.Bool
			return func() {
				if done.CompareAndSwap(false, true) {
					l.inflight.Add(-1)
				}
			}, true
		}
	}
}

// SetLimit moves the admission ceiling; values below 1 clamp to 1.
// In-flight requests above a lowered ceiling are not evicted — the
// ceiling only gates new admissions, so it drains naturally.
func (l *Limiter) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	l.limit.Store(int64(n))
}

// Limit reports the current admission ceiling.
func (l *Limiter) Limit() int { return int(l.limit.Load()) }

// Inflight reports the number of currently admitted requests.
func (l *Limiter) Inflight() int { return int(l.inflight.Load()) }

// Admitted reports the cumulative number of admitted requests.
func (l *Limiter) Admitted() uint64 { return l.admitted.Load() }

// Shed reports the cumulative number of shed requests.
func (l *Limiter) Shed() uint64 { return l.shed.Load() }

// SetRetryAfter sets the backoff hint advertised to shed callers.
// Non-positive values clamp to 1s.
func (l *Limiter) SetRetryAfter(d time.Duration) {
	if d <= 0 {
		d = time.Second
	}
	l.retryAfter.Store(int64(d))
}

// RetryAfter reports the backoff hint for shed callers.
func (l *Limiter) RetryAfter() time.Duration {
	return time.Duration(l.retryAfter.Load())
}
