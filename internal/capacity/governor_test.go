package capacity

import (
	"sync"
	"testing"
	"time"
)

// fakeSource is a scriptable RouteSource over a fine 1ms bucket grid:
// set(route, count, q, inflight) files the observations that arrived
// since the previous set (count is cumulative) into the bucket whose
// upper bound is exactly q, so the governor's window quantile reads the
// scripted value back verbatim.
type fakeSource struct {
	mu       sync.Mutex
	buckets  map[string][]uint64
	last     map[string]uint64
	sums     map[string]time.Duration
	inflight int64
}

// fakeGrid is the number of finite 1ms buckets (covers up to 10s).
const fakeGrid = 10000

func newFakeSource() *fakeSource {
	return &fakeSource{buckets: map[string][]uint64{}, last: map[string]uint64{}, sums: map[string]time.Duration{}}
}

func (f *fakeSource) set(route string, count uint64, q time.Duration, inflight int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.buckets[route]
	if b == nil {
		b = make([]uint64, fakeGrid+1)
		f.buckets[route] = b
	}
	if count > f.last[route] {
		idx := int((q+time.Millisecond-1)/time.Millisecond) - 1
		if idx < 0 {
			idx = 0
		}
		if idx > fakeGrid {
			idx = fakeGrid
		}
		delta := count - f.last[route]
		b[idx] += delta
		f.sums[route] += time.Duration(delta) * q
		f.last[route] = count
	}
	f.inflight = inflight
}

func (f *fakeSource) BucketBounds() []time.Duration {
	bounds := make([]time.Duration, fakeGrid)
	for i := range bounds {
		bounds[i] = time.Duration(i+1) * time.Millisecond
	}
	return bounds
}

func (f *fakeSource) RouteBuckets(route string) ([]uint64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.buckets[route]
	if !ok {
		return nil, false
	}
	out := make([]uint64, len(b))
	copy(out, b)
	return out, true
}

func (f *fakeSource) RouteObservations(route string) (uint64, time.Duration, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.last[route]
	return c, f.sums[route], ok
}

func (f *fakeSource) InFlight() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inflight
}

func newTestGovernor(src RouteSource) *Governor {
	return NewGovernor(GovernorConfig{
		Routes:         []string{"POST /t"},
		SLO:            100 * time.Millisecond,
		MaxConcurrency: 64,
	}, src, NewLimiter(1))
}

// TestWindowQuantile pins the delta-histogram quantile: winning bucket's
// upper bound, +Inf clamped to the last finite bound, empty window → !ok.
func TestWindowQuantile(t *testing.T) {
	bounds := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	counts := []uint64{90, 8, 1, 1} // 100 obs, one in +Inf
	if q, ok := windowQuantile(bounds, counts, 0.5); !ok || q != 10*time.Millisecond {
		t.Errorf("p50 = %v/%v, want 10ms", q, ok)
	}
	if q, ok := windowQuantile(bounds, counts, 0.98); !ok || q != 20*time.Millisecond {
		t.Errorf("p98 = %v/%v, want 20ms", q, ok)
	}
	if q, ok := windowQuantile(bounds, counts, 1); !ok || q != 30*time.Millisecond {
		t.Errorf("p100 = %v/%v, want +Inf clamped to 30ms", q, ok)
	}
	if _, ok := windowQuantile(bounds, []uint64{0, 0, 0, 0}, 0.99); ok {
		t.Error("empty window must report !ok")
	}
}

// TestDiffBuckets pins snapshot differencing: missing prev counts from
// zero, shrinking counters clamp rather than wrap.
func TestDiffBuckets(t *testing.T) {
	w, n := diffBuckets([]uint64{5, 3, 2}, nil)
	if n != 10 || w[0] != 5 {
		t.Errorf("nil prev: window %v total %d, want full counts", w, n)
	}
	w, n = diffBuckets([]uint64{7, 3, 2}, []uint64{5, 3, 2})
	if n != 2 || w[0] != 2 || w[1] != 0 {
		t.Errorf("delta: window %v total %d, want [2 0 0]/2", w, n)
	}
	if _, n = diffBuckets([]uint64{1, 0, 0}, []uint64{5, 0, 0}); n != 0 {
		t.Errorf("shrinking counter: total %d, want clamp to 0", n)
	}
}

// TestGovernorRecoversAfterOverloadTransient is the sticky-overload
// regression the windowed quantile fixes: a heavy transient crushes the
// ceiling; once the windows turn healthy the gate must reopen even
// though the all-time p99 would stay pinned at the bad tail forever.
func TestGovernorRecoversAfterOverloadTransient(t *testing.T) {
	src := newFakeSource()
	g := newTestGovernor(src)
	// Transient: 5000 observations at 20× SLO.
	src.set("POST /t", 5000, 2*time.Second, 60)
	g.Refresh()
	low := g.Limiter().Limit()
	if low >= 10 {
		t.Fatalf("limit after 20× overload = %d, want crushed", low)
	}
	// Recovery: trickles of healthy traffic. The cumulative histogram is
	// still >98% overload samples, so an all-time p99 would keep the
	// gate shut; the windowed fit must reopen it.
	count := uint64(5000)
	for i := 0; i < 40; i++ {
		count += 5
		src.set("POST /t", count, 10*time.Millisecond, int64(g.Limiter().Limit()))
		g.Refresh()
	}
	if got := g.Limiter().Limit(); got < 4*low {
		t.Errorf("limit = %d after 40 healthy windows, want ≥ 4× the crushed value %d", got, low)
	}
}

// TestGovernorStartsOpen: before any evidence the limiter sits at
// MaxConcurrency — admission control must fail open.
func TestGovernorStartsOpen(t *testing.T) {
	g := newTestGovernor(newFakeSource())
	if got := g.Limiter().Limit(); got != 64 {
		t.Errorf("initial limit = %d, want MaxConcurrency 64", got)
	}
	if ra := g.Limiter().RetryAfter(); ra < time.Second {
		t.Errorf("retry-after hint = %v, want ≥ 1s", ra)
	}
}

// TestGovernorShrinksOnSLOViolation: observed p99 over the SLO must pull
// the ceiling down multiplicatively, without waiting for the regression.
func TestGovernorShrinksOnSLOViolation(t *testing.T) {
	src := newFakeSource()
	g := newTestGovernor(src)
	// p99 = 4× SLO at 40 in flight → ceiling should drop to ≈ 40/4 = 10.
	src.set("POST /t", 100, 400*time.Millisecond, 40)
	g.Refresh()
	if got := g.Limiter().Limit(); got < 2 || got > 12 {
		t.Errorf("limit after 4× violation at c=40: %d, want ≈10", got)
	}
}

// TestGovernorGrowthBounded: healthy latencies reopen the gate but by at
// most 25% per refresh.
func TestGovernorGrowthBounded(t *testing.T) {
	src := newFakeSource()
	g := newTestGovernor(src)
	src.set("POST /t", 100, 400*time.Millisecond, 40)
	g.Refresh()
	low := g.Limiter().Limit()

	// Recovery: consistently fast p99s, new traffic each refresh. The
	// model may still dip the ceiling while the violation sample decays
	// out of the EWMA — what must NEVER happen is a jump of more than
	// 25% per refresh, and the gate must eventually reopen.
	prev := low
	for i := 0; i < 40; i++ {
		src.set("POST /t", uint64(200+i), 10*time.Millisecond, int64(prev))
		g.Refresh()
		cur := g.Limiter().Limit()
		// 25% growth, rounded down, +1 grace for the floor at small limits.
		if maxGrow := prev + prev/4 + 1; cur > maxGrow {
			t.Fatalf("refresh %d: limit jumped %d → %d, growth bound is %d", i, prev, cur, maxGrow)
		}
		prev = cur
	}
	if prev < 2*low {
		t.Errorf("limit = %d after 40 healthy refreshes, want ≥ 2× the shrunken value %d", prev, low)
	}
}

// TestGovernorNoNewTraffic: refreshes without fresh observations must
// not move the ceiling (idle periods would otherwise slowly crank the
// gate open on stale data).
func TestGovernorNoNewTraffic(t *testing.T) {
	src := newFakeSource()
	g := newTestGovernor(src)
	src.set("POST /t", 100, 400*time.Millisecond, 40)
	g.Refresh()
	want := g.Limiter().Limit()
	for i := 0; i < 5; i++ {
		g.Refresh() // same counts: no new samples
	}
	if got := g.Limiter().Limit(); got != want {
		t.Errorf("limit drifted %d → %d with no new traffic", want, got)
	}
}

// TestGovernorMaybeThrottles: Maybe only refits once per MinInterval and
// is safe to race.
func TestGovernorMaybeThrottles(t *testing.T) {
	src := newFakeSource()
	g := NewGovernor(GovernorConfig{
		Routes:      []string{"POST /t"},
		SLO:         100 * time.Millisecond,
		MinInterval: time.Hour, // only the first Maybe may refit
	}, src, NewLimiter(1))
	src.set("POST /t", 100, 500*time.Millisecond, 40)

	now := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); g.Maybe(now) }()
	}
	wg.Wait()
	first := g.Limiter().Limit()

	// Worse evidence, but inside the interval: must be ignored.
	src.set("POST /t", 200, 5*time.Second, 40)
	g.Maybe(now.Add(time.Minute))
	if got := g.Limiter().Limit(); got != first {
		t.Errorf("limit moved %d → %d inside MinInterval", first, got)
	}
	// Past the interval it refits.
	g.Maybe(now.Add(2 * time.Hour))
	if got := g.Limiter().Limit(); got >= first {
		t.Errorf("limit = %d after 50× SLO evidence, want < %d", got, first)
	}
}

// TestGovernorModelDriven: with spread in the (concurrency, latency)
// samples the knee must come from the fitted model, not just AIMD — a
// sub-SLO workload with a real slope caps below MaxConcurrency.
func TestGovernorModelDriven(t *testing.T) {
	src := newFakeSource()
	g := NewGovernor(GovernorConfig{
		Routes:         []string{"POST /t"},
		SLO:            100 * time.Millisecond,
		MaxConcurrency: 1024,
		Decay:          0.3,
	}, src, NewLimiter(1))
	// Latency law: 10ms + 3ms·(c−1); true knee = 1 + 90/3 = 31.
	count := uint64(0)
	for pass := 0; pass < 60; pass++ {
		c := int64(1 + pass%16)
		lat := 10*time.Millisecond + 3*time.Millisecond*time.Duration(c-1)
		count += 10
		src.set("POST /t", count, lat, c)
		g.Refresh()
	}
	got := g.Limiter().Limit()
	if got < 15 || got > 60 {
		t.Errorf("model-driven limit = %d, want in [15, 60] around true knee 31", got)
	}
	models := g.Models()
	if m, ok := models["POST /t"]; !ok || m.Beta <= 0 {
		t.Errorf("fitted model = %+v (ok=%v), want positive beta", m, ok)
	}
}
