package capacity

import (
	"math"
	"math/rand"
	"testing"
)

// TestModelKnee pins the closed-form knee against hand-computed points.
func TestModelKnee(t *testing.T) {
	m := Model{Alpha: 0.010, Beta: 0.002} // 10ms base, +2ms per extra request
	// SLO 30ms: 1 + (0.030-0.010)/0.002 = 11.
	if k := m.Knee(0.030); math.Abs(k-11) > 1e-9 {
		t.Errorf("knee = %v, want 11", k)
	}
	// SLO below the base latency: even one request misses, knee clamps to 1.
	if k := m.Knee(0.005); k != 1 {
		t.Errorf("knee below alpha = %v, want 1", k)
	}
	// No saturation evidence: unbounded.
	if k := (Model{Alpha: 0.010}).Knee(0.030); !math.IsInf(k, 1) {
		t.Errorf("zero-beta knee = %v, want +Inf", k)
	}
	// Latency prediction clamps concurrency below 1.
	if got := m.Latency(0); got != m.Alpha {
		t.Errorf("Latency(0) = %v, want alpha %v", got, m.Alpha)
	}
}

// TestEstimatorRecoversLinearModel feeds samples from a known linear
// latency law (plus noise) and checks the fitted Alpha/Beta land close
// enough that the derived knee is within ~15% of truth.
func TestEstimatorRecoversLinearModel(t *testing.T) {
	const alpha, beta = 0.020, 0.005 // 20ms base, +5ms per extra request
	rng := rand.New(rand.NewSource(2014))
	e := NewEstimator(0.05) // long memory: this test wants the asymptote

	if _, ok := e.Model(); ok {
		t.Fatal("model reported ok before any samples")
	}
	for i := 0; i < 4000; i++ {
		c := float64(1 + rng.Intn(32))
		lat := alpha + beta*(c-1)
		lat *= 1 + 0.05*(rng.Float64()-0.5) // ±2.5% noise
		e.Observe(c, lat)
	}
	m, ok := e.Model()
	if !ok {
		t.Fatal("model not ready after 4000 samples")
	}
	if math.Abs(m.Alpha-alpha)/alpha > 0.15 {
		t.Errorf("alpha = %v, want within 15%% of %v", m.Alpha, alpha)
	}
	if math.Abs(m.Beta-beta)/beta > 0.15 {
		t.Errorf("beta = %v, want within 15%% of %v", m.Beta, beta)
	}
	const slo = 0.100 // 100ms → true knee = 1 + 0.08/0.005 = 17
	trueKnee := 1 + (slo-alpha)/beta
	if k := m.Knee(slo); math.Abs(k-trueKnee)/trueKnee > 0.15 {
		t.Errorf("knee = %v, want within 15%% of %v", k, trueKnee)
	}
}

// TestEstimatorNoSpread: constant concurrency gives the slope nothing to
// bite on; the estimator must report zero Beta (unbounded knee), not a
// slope invented from noise.
func TestEstimatorNoSpread(t *testing.T) {
	e := NewEstimator(0.2)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		e.Observe(4, 0.010*(1+0.2*rng.Float64()))
	}
	m, ok := e.Model()
	if !ok {
		t.Fatal("model not ready")
	}
	if m.Beta != 0 {
		t.Errorf("beta = %v on zero-variance concurrency, want 0", m.Beta)
	}
	if m.Alpha <= 0 {
		t.Errorf("alpha = %v, want the latency mean", m.Alpha)
	}
}

// TestEstimatorRejectsGarbage: NaN/Inf/negative samples must not poison
// the moments.
func TestEstimatorRejectsGarbage(t *testing.T) {
	e := NewEstimator(0.2)
	for i := 0; i < 20; i++ {
		e.Observe(float64(1+i%8), 0.010+0.002*float64(i%8))
	}
	before, _ := e.Model()
	e.Observe(math.NaN(), 0.5)
	e.Observe(4, math.Inf(1))
	e.Observe(math.Inf(-1), -1)
	e.Observe(4, -0.5)
	after, ok := e.Model()
	if !ok || after != before {
		t.Errorf("garbage samples moved the model: %+v → %+v", before, after)
	}
}

// TestEstimatorTracksDrift: after the workload shifts to a steeper
// latency law, the EWMA must forget the old regime.
func TestEstimatorTracksDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEstimator(0.1)
	feed := func(alpha, beta float64, n int) {
		for i := 0; i < n; i++ {
			c := float64(1 + rng.Intn(16))
			e.Observe(c, alpha+beta*(c-1))
		}
	}
	feed(0.010, 0.001, 500) // shallow regime
	shallow, _ := e.Model()
	feed(0.010, 0.010, 500) // 10× steeper regime
	steep, ok := e.Model()
	if !ok {
		t.Fatal("model not ready")
	}
	if steep.Beta < 5*shallow.Beta {
		t.Errorf("beta after drift = %v, want ≫ shallow %v", steep.Beta, shallow.Beta)
	}
}
