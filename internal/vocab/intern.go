package vocab

import "sync"

// Interner maps tag strings to dense uint32 IDs and back. One interner is
// shared by every resource of a project (and may be shared wider — the tag
// vocabulary of a tagging system is global), so the same tag always gets the
// same ID and per-resource structures can index by dense ID instead of
// hashing strings.
//
// It is safe for concurrent use. The fast path (tag already interned) takes
// only a read lock; self-organization results on tagging vocabularies show
// the per-resource tag core converges quickly, so after warm-up virtually
// every lookup is a read-lock hit.
type Interner struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	tags []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// ID returns the dense ID for tag, interning it on first sight. The caller
// is expected to pass normalized tags (rfd.Normalize); the interner does not
// canonicalize.
func (in *Interner) ID(tag string) uint32 {
	in.mu.RLock()
	id, ok := in.ids[tag]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok = in.ids[tag]; ok {
		return id
	}
	id = uint32(len(in.tags))
	// Clone the key so the interner never pins a larger buffer the tag
	// string may be slicing (trace lines, request bodies).
	tag = string(append([]byte(nil), tag...))
	in.ids[tag] = id
	in.tags = append(in.tags, tag)
	return id
}

// Lookup returns the ID for tag without interning; ok=false if unseen.
func (in *Interner) Lookup(tag string) (uint32, bool) {
	in.mu.RLock()
	id, ok := in.ids[tag]
	in.mu.RUnlock()
	return id, ok
}

// Tag returns the string for an ID. IDs are dense, so any id < Len() is
// valid; out-of-range IDs return "".
func (in *Interner) Tag(id uint32) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if int(id) >= len(in.tags) {
		return ""
	}
	return in.tags[id]
}

// Canon returns the canonical shared instance of tag, interning it if
// needed. Hot producers (the tagger simulator, trace loaders) route tags
// through Canon so repeated tags share one backing array instead of
// accumulating per-post copies.
func (in *Interner) Canon(tag string) string {
	in.mu.RLock()
	if id, ok := in.ids[tag]; ok {
		t := in.tags[id]
		in.mu.RUnlock()
		return t
	}
	in.mu.RUnlock()
	return in.Tag(in.ID(tag))
}

// Len returns how many distinct tags have been interned.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.tags)
}
