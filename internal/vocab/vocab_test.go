package vocab

import (
	"math"
	"testing"

	"itag/internal/rfd"
	"itag/internal/rng"
)

func TestGenerateDefaults(t *testing.T) {
	r := rng.New(1)
	v, err := Generate(r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Background) != 60 {
		t.Errorf("background size = %d", len(v.Background))
	}
	if v.NumTopics() != 12 {
		t.Errorf("topics = %d", v.NumTopics())
	}
	for i, topic := range v.Topics {
		if len(topic) != 40 {
			t.Errorf("topic %d size = %d", i, len(topic))
		}
	}
	want := 60 + 12*40
	if len(v.All) != want {
		t.Errorf("all tags = %d, want %d (must be unique)", len(v.All), want)
	}
}

func TestGenerateUniqueTags(t *testing.T) {
	r := rng.New(2)
	v, err := Generate(r, Config{BackgroundSize: 30, NumTopics: 5, TopicSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]struct{})
	check := func(tags []string) {
		for _, tag := range tags {
			if tag == "" {
				t.Fatal("empty tag generated")
			}
			if _, dup := seen[tag]; dup {
				t.Fatalf("duplicate tag %q across pools", tag)
			}
			seen[tag] = struct{}{}
		}
	}
	check(v.Background)
	for _, topic := range v.Topics {
		check(topic)
	}
}

func TestSampleBackgroundHeavyTail(t *testing.T) {
	r := rng.New(3)
	v, err := Generate(r, Config{BackgroundSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for i := 0; i < 20000; i++ {
		counts[v.SampleBackground(r)]++
	}
	// First background tag is rank 1: should dominate a tail tag.
	head := counts[v.Background[0]]
	tail := counts[v.Background[19]]
	if head <= tail {
		t.Errorf("head %d should exceed tail %d under Zipf prior", head, tail)
	}
}

func TestLatentDistributionProperties(t *testing.T) {
	r := rng.New(4)
	v, err := Generate(r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := v.Latent(r, 0, LatentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rfd.Sum(d)-1) > 1e-9 {
		t.Errorf("latent sums to %v", rfd.Sum(d))
	}
	// Default: 5 core + 8 topic + 6 background = up to 19 distinct tags
	// (overlap between topic and background picks impossible by pool
	// disjointness; core tags are fresh).
	if got := len(d); got < 15 || got > 19 {
		t.Errorf("latent support = %d, want ~19", got)
	}
	for tag, w := range d {
		if w <= 0 {
			t.Errorf("tag %q has non-positive mass %v", tag, w)
		}
	}
}

func TestLatentTopicOutOfRange(t *testing.T) {
	r := rng.New(5)
	v, err := Generate(r, Config{NumTopics: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Latent(r, 3, LatentConfig{}); err == nil {
		t.Error("topic out of range must fail")
	}
	if _, err := v.Latent(r, -1, LatentConfig{}); err == nil {
		t.Error("negative topic must fail")
	}
}

func TestLatentResourcesShareTopicTags(t *testing.T) {
	r := rng.New(6)
	v, err := Generate(r, Config{NumTopics: 2, TopicSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := v.Latent(r, 0, LatentConfig{TopicTags: 8})
	b, _ := v.Latent(r, 0, LatentConfig{TopicTags: 8})
	topicSet := make(map[string]struct{})
	for _, tag := range v.Topics[0] {
		topicSet[tag] = struct{}{}
	}
	shared := 0
	for tag := range a {
		if _, inTopic := topicSet[tag]; !inTopic {
			continue
		}
		if _, inB := b[tag]; inB {
			shared++
		}
	}
	if shared == 0 {
		t.Error("same-topic resources should share topic tags")
	}
}

func TestLatentMixtureMassSplit(t *testing.T) {
	r := rng.New(7)
	v, err := Generate(r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := LatentConfig{CoreMass: 0.6, TopicMass: 0.25, BackgroundMass: 0.15}
	d, err := v.Latent(r, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Core tags carry the "-NNNN" suffix; measure their mass.
	var coreMass float64
	for tag, w := range d {
		if hasCoreSuffix(tag) {
			coreMass += w
		}
	}
	if math.Abs(coreMass-0.6) > 0.05 {
		t.Errorf("core mass = %v, want ~0.6", coreMass)
	}
}

func hasCoreSuffix(tag string) bool {
	for i := len(tag) - 1; i >= 0; i-- {
		if tag[i] == '-' {
			return i < len(tag)-1
		}
		if tag[i] < '0' || tag[i] > '9' {
			return false
		}
	}
	return false
}

func TestTypoAlwaysDiffers(t *testing.T) {
	r := rng.New(8)
	for i := 0; i < 2000; i++ {
		tag := "database"
		if got := Typo(r, tag); got == tag {
			t.Fatalf("typo produced unchanged tag at iteration %d", i)
		}
	}
	if got := Typo(r, "a"); got == "a" || len(got) < 2 {
		t.Errorf("short tag typo = %q", got)
	}
	if got := Typo(r, ""); len(got) == 0 {
		t.Error("empty tag typo must be nonempty")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	v1, err := Generate(rng.New(99), Config{})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Generate(rng.New(99), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(v1.Background) != len(v2.Background) {
		t.Fatal("sizes differ")
	}
	for i := range v1.Background {
		if v1.Background[i] != v2.Background[i] {
			t.Fatal("same seed must reproduce vocabulary")
		}
	}
}
