package vocab

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	if in.Len() != 0 {
		t.Fatalf("fresh interner has %d tags", in.Len())
	}
	a := in.ID("go")
	b := in.ID("database")
	if a == b {
		t.Fatal("distinct tags share an ID")
	}
	if got := in.ID("go"); got != a {
		t.Errorf("re-interning changed ID: %d vs %d", got, a)
	}
	if got := in.Tag(a); got != "go" {
		t.Errorf("Tag(%d) = %q", a, got)
	}
	if got := in.Tag(1 << 30); got != "" {
		t.Errorf("out-of-range Tag = %q", got)
	}
	if id, ok := in.Lookup("database"); !ok || id != b {
		t.Errorf("Lookup(database) = %d, %v", id, ok)
	}
	if _, ok := in.Lookup("unseen"); ok {
		t.Error("Lookup must not intern")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
}

func TestInternerIDsAreDense(t *testing.T) {
	in := NewInterner()
	for i := 0; i < 100; i++ {
		if id := in.ID(fmt.Sprintf("tag-%03d", i)); id != uint32(i) {
			t.Fatalf("tag %d got ID %d", i, id)
		}
	}
}

func TestInternerCanonSharesInstance(t *testing.T) {
	in := NewInterner()
	// Build the tag dynamically so the compiler can't pool the literals.
	t1 := in.Canon(string([]byte("golang")))
	t2 := in.Canon(string([]byte("golang")))
	if t1 != t2 {
		t.Fatal("Canon returned different tags")
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d", in.Len())
	}
}

// TestInternerConcurrent hammers the interner from many goroutines over an
// overlapping tag set; IDs must be stable and the reverse mapping
// consistent. Run under -race in CI.
func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	const workers = 16
	const tags = 200
	ids := make([][]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]uint32, tags)
			for i := 0; i < tags; i++ {
				// Each worker starts at a different offset so interning
				// races on first-sight ordering, not just lookups.
				tag := fmt.Sprintf("tag-%03d", (i+w*13)%tags)
				ids[w][(i+w*13)%tags] = in.ID(tag)
			}
		}(w)
	}
	wg.Wait()
	if in.Len() != tags {
		t.Fatalf("interned %d tags, want %d", in.Len(), tags)
	}
	for w := 1; w < workers; w++ {
		for i := 0; i < tags; i++ {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d saw ID %d for tag %d, worker 0 saw %d", w, ids[w][i], i, ids[0][i])
			}
		}
	}
	for i := 0; i < tags; i++ {
		want := fmt.Sprintf("tag-%03d", i)
		if got := in.Tag(ids[0][i]); got != want {
			t.Fatalf("Tag(%d) = %q, want %q", ids[0][i], got, want)
		}
	}
}
