// Package vocab generates synthetic tag vocabularies and per-resource latent
// tag distributions for the iTag simulation substrate.
//
// The real iTag demo replayed a Delicious 2010 crawl we do not have. What
// the strategies interact with is the statistical structure of tagging, not
// the tag strings themselves, so this package reproduces the structure
// reported for such traces (and assumed by the paper's model):
//
//   - a global vocabulary with a heavy-tailed usage prior (generic tags such
//     as "web" or "toread" appear on many resources),
//   - topical clusters: resources in the same topic share a topic vocabulary,
//   - per-resource core tags: a few tags specific to the resource,
//   - the latent ("true") distribution of a resource is a mixture of core,
//     topic, and background components — the distribution rfds converge to
//     when enough honest posts accumulate.
//
// Tags are pronounceable synthetic words so exports and debugging output
// remain readable.
package vocab

import (
	"fmt"
	"math"
	"math/rand"

	"itag/internal/rfd"
	"itag/internal/rng"
)

// Vocabulary holds the generated tag universe and its structure.
type Vocabulary struct {
	// Background tags, shared across all resources (heavy tail).
	Background []string
	// Topics[i] is the tag list of topic i.
	Topics [][]string
	// All is the union of all tags, deduplicated.
	All []string

	backgroundDist *rng.Zipf
}

// Config parameterizes vocabulary generation.
type Config struct {
	// BackgroundSize is the number of generic tags (default 60).
	BackgroundSize int
	// NumTopics is the number of topical clusters (default 12).
	NumTopics int
	// TopicSize is the number of tags per topic (default 40).
	TopicSize int
	// BackgroundZipfS is the exponent of the background usage prior
	// (default 1.05).
	BackgroundZipfS float64
}

func (c Config) withDefaults() Config {
	if c.BackgroundSize <= 0 {
		c.BackgroundSize = 60
	}
	if c.NumTopics <= 0 {
		c.NumTopics = 12
	}
	if c.TopicSize <= 0 {
		c.TopicSize = 40
	}
	if c.BackgroundZipfS <= 0 {
		c.BackgroundZipfS = 1.05
	}
	return c
}

// Generate builds a vocabulary deterministically from the rand source.
func Generate(r *rand.Rand, cfg Config) (*Vocabulary, error) {
	cfg = cfg.withDefaults()
	gen := newWordGen(r)
	v := &Vocabulary{}
	seen := make(map[string]struct{})
	fresh := func() string {
		for {
			w := gen.word()
			if _, dup := seen[w]; !dup {
				seen[w] = struct{}{}
				v.All = append(v.All, w) // insertion order keeps generation deterministic
				return w
			}
		}
	}
	for i := 0; i < cfg.BackgroundSize; i++ {
		v.Background = append(v.Background, fresh())
	}
	for t := 0; t < cfg.NumTopics; t++ {
		topic := make([]string, 0, cfg.TopicSize)
		for i := 0; i < cfg.TopicSize; i++ {
			topic = append(topic, fresh())
		}
		v.Topics = append(v.Topics, topic)
	}
	z, err := rng.NewZipf(cfg.BackgroundSize, cfg.BackgroundZipfS)
	if err != nil {
		return nil, fmt.Errorf("vocab: %w", err)
	}
	v.backgroundDist = z
	return v, nil
}

// SampleBackground draws one background tag under the heavy-tailed prior.
func (v *Vocabulary) SampleBackground(r *rand.Rand) string {
	return v.Background[v.backgroundDist.Sample(r)]
}

// RandomTag draws a uniform tag from the whole universe (noise model).
func (v *Vocabulary) RandomTag(r *rand.Rand) string {
	return v.All[r.Intn(len(v.All))]
}

// NumTopics returns the number of topics.
func (v *Vocabulary) NumTopics() int { return len(v.Topics) }

// LatentConfig parameterizes a resource's latent tag distribution.
type LatentConfig struct {
	// CoreTags is how many resource-specific tags to mint (default 5).
	CoreTags int
	// TopicTags is how many topic tags the resource uses (default 8).
	TopicTags int
	// BackgroundTags is how many background tags it uses (default 6).
	BackgroundTags int
	// CoreMass, TopicMass, BackgroundMass are the mixture weights
	// (defaults 0.5 / 0.3 / 0.2; normalized internally).
	CoreMass, TopicMass, BackgroundMass float64
	// WithinZipfS shapes the within-component rank distribution
	// (default 1.0).
	WithinZipfS float64
}

func (c LatentConfig) withDefaults() LatentConfig {
	if c.CoreTags <= 0 {
		c.CoreTags = 5
	}
	if c.TopicTags <= 0 {
		c.TopicTags = 8
	}
	if c.BackgroundTags <= 0 {
		c.BackgroundTags = 6
	}
	if c.CoreMass <= 0 && c.TopicMass <= 0 && c.BackgroundMass <= 0 {
		c.CoreMass, c.TopicMass, c.BackgroundMass = 0.5, 0.3, 0.2
	}
	if c.WithinZipfS <= 0 {
		c.WithinZipfS = 1.0
	}
	return c
}

// Latent builds a resource's latent tag distribution in topic `topic`.
// Core tags are freshly minted words (resource-specific), so two resources
// never share core tags; topic and background tags come from the shared
// pools. The result sums to 1.
func (v *Vocabulary) Latent(r *rand.Rand, topic int, cfg LatentConfig) (rfd.Dist, error) {
	cfg = cfg.withDefaults()
	if topic < 0 || topic >= len(v.Topics) {
		return nil, fmt.Errorf("vocab: topic %d out of range [0,%d)", topic, len(v.Topics))
	}
	dist := make(rfd.Dist)
	gen := newWordGen(r)

	add := func(tags []string, mass float64) {
		if len(tags) == 0 || mass <= 0 {
			return
		}
		// Zipfian mass within the component, in the given order.
		weights := make([]float64, len(tags))
		var sum float64
		for i := range tags {
			weights[i] = 1.0 / math.Pow(float64(i+1), cfg.WithinZipfS)
			sum += weights[i]
		}
		for i, t := range tags {
			dist[t] += mass * weights[i] / sum
		}
	}

	core := make([]string, 0, cfg.CoreTags)
	for i := 0; i < cfg.CoreTags; i++ {
		core = append(core, gen.word()+fmt.Sprintf("-%d", r.Intn(10000)))
	}
	topicTags := pickDistinct(r, v.Topics[topic], cfg.TopicTags)
	bgTags := pickDistinct(r, v.Background, cfg.BackgroundTags)

	total := cfg.CoreMass + cfg.TopicMass + cfg.BackgroundMass
	add(core, cfg.CoreMass/total)
	add(topicTags, cfg.TopicMass/total)
	add(bgTags, cfg.BackgroundMass/total)
	return rfd.Normalized(dist), nil
}

func pickDistinct(r *rand.Rand, pool []string, k int) []string {
	idx := rng.SampleWithoutReplacement(r, len(pool), k)
	out := make([]string, 0, len(idx))
	for _, i := range idx {
		out = append(out, pool[i])
	}
	return out
}

// Typo returns a plausible misspelling of a tag: one random substitution,
// deletion, insertion, or transposition. Tags of length <2 get a suffix.
// This is the "noisy" tag defect from paper §I.
func Typo(r *rand.Rand, tag string) string {
	b := []byte(tag)
	if len(b) < 2 {
		return tag + string(randLetter(r))
	}
	switch r.Intn(4) {
	case 0: // substitute
		i := r.Intn(len(b))
		b[i] = randLetter(r)
	case 1: // delete
		i := r.Intn(len(b))
		b = append(b[:i], b[i+1:]...)
	case 2: // insert
		i := r.Intn(len(b) + 1)
		b = append(b[:i], append([]byte{randLetter(r)}, b[i:]...)...)
	default: // transpose
		i := r.Intn(len(b) - 1)
		b[i], b[i+1] = b[i+1], b[i]
	}
	out := string(b)
	if out == tag {
		return tag + string(randLetter(r))
	}
	return out
}

func randLetter(r *rand.Rand) byte {
	return byte('a' + r.Intn(26))
}

// wordGen emits pronounceable synthetic words (consonant-vowel syllables).
type wordGen struct {
	r *rand.Rand
}

func newWordGen(r *rand.Rand) *wordGen { return &wordGen{r: r} }

var (
	consonants = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "ch", "sh", "st", "tr"}
	vowels     = []string{"a", "e", "i", "o", "u", "ai", "ou", "ea"}
)

func (g *wordGen) word() string {
	n := 2 + g.r.Intn(2) // 2-3 syllables
	out := ""
	for i := 0; i < n; i++ {
		out += consonants[g.r.Intn(len(consonants))] + vowels[g.r.Intn(len(vowels))]
	}
	return out
}
