package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"itag/internal/api"
	"itag/internal/core"
)

// This file holds the v1-only endpoints: cursor pagination, the batch
// write paths, and the SSE telemetry stream. The shared CRUD handlers live
// in server.go and are mounted on both the v1 and legacy route tables.

// maxBatchItems caps one batch call; bigger fleets split into multiple
// calls client-side.
const maxBatchItems = 10000

// itemError is the per-item error report inside batch responses — same
// code vocabulary as the top-level envelope.
type itemError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func toItemError(err error) *itemError {
	ae := mapErr(err)
	if inner := api.AsError(err); inner != nil {
		ae = inner
	}
	return &itemError{Code: ae.Code, Message: ae.Message}
}

// --- paginated listings ---------------------------------------------------------

type projectsPage struct {
	Items      []core.ProjectInfo `json:"items"`
	NextCursor string             `json:"next_cursor,omitempty"`
}

func (s *Server) listProjectsV1(r *http.Request, _ api.None) (projectsPage, error) {
	limit, cursor, err := parsePageParams(r)
	if err != nil {
		return projectsPage{}, err
	}
	items, next, err := s.svc.ProjectsPage(r.Context(), r.URL.Query().Get("provider"), cursor, limit)
	if err != nil {
		return projectsPage{}, err
	}
	return projectsPage{Items: items, NextCursor: next}, nil
}

type exportPage struct {
	Items      []core.ExportedResource `json:"items"`
	NextCursor string                  `json:"next_cursor,omitempty"`
}

func (s *Server) exportV1(r *http.Request, _ api.None) (exportPage, error) {
	limit, cursor, err := parsePageParams(r)
	if err != nil {
		return exportPage{}, err
	}
	items, next, err := s.svc.ExportPage(r.Context(), r.PathValue("id"), cursor, limit)
	if err != nil {
		return exportPage{}, err
	}
	return exportPage{Items: items, NextCursor: next}, nil
}

// --- batch registration ---------------------------------------------------------

type batchNamesReq struct {
	Names []string `json:"names"`
}

type batchRegisterResult struct {
	ID    string     `json:"id,omitempty"`
	Error *itemError `json:"error,omitempty"`
}

type batchRegisterResp struct {
	Results []batchRegisterResult `json:"results"`
	OK      int                   `json:"ok"`
	Failed  int                   `json:"failed"`
}

// batchRegisterTaggers registers many taggers in one round-trip — the
// onboarding path for a fleet of simulated taggers.
func (s *Server) batchRegisterTaggers(r *http.Request, req batchNamesReq) (batchRegisterResp, error) {
	if len(req.Names) == 0 {
		return batchRegisterResp{}, api.Errorf(http.StatusBadRequest, api.CodeInvalidArgument,
			"names required")
	}
	if len(req.Names) > maxBatchItems {
		return batchRegisterResp{}, api.Errorf(http.StatusRequestEntityTooLarge, api.CodeBatchTooLarge,
			"%d names exceeds the %d per-call cap", len(req.Names), maxBatchItems)
	}
	resp := batchRegisterResp{Results: make([]batchRegisterResult, 0, len(req.Names))}
	for _, name := range req.Names {
		if err := r.Context().Err(); err != nil {
			return batchRegisterResp{}, err
		}
		id, err := s.svc.RegisterTagger(r.Context(), name)
		if err != nil {
			resp.Results = append(resp.Results, batchRegisterResult{Error: toItemError(err)})
			resp.Failed++
			continue
		}
		resp.Results = append(resp.Results, batchRegisterResult{ID: id})
		resp.OK++
	}
	return resp, nil
}

// --- batch tasks ----------------------------------------------------------------

// BatchTaskItem is one request(+submit) pair in a tasks:batch call. Tags
// empty = request only (the task stays assigned for a later submit).
type BatchTaskItem struct {
	TaggerID string   `json:"tagger_id"`
	Tags     []string `json:"tags,omitempty"`
}

type batchTasksReq struct {
	Items []BatchTaskItem `json:"items"`
}

type batchTaskResult struct {
	TaskID     string     `json:"task_id,omitempty"`
	ResourceID string     `json:"resource_id,omitempty"`
	Submitted  bool       `json:"submitted,omitempty"`
	Error      *itemError `json:"error,omitempty"`
}

type batchTasksResp struct {
	Results []batchTaskResult `json:"results"`
	OK      int               `json:"ok"`
	Failed  int               `json:"failed"`
}

// batchTasks executes many request+submit pairs in one round-trip: the
// high-fanout write path a fleet of concurrent taggers needs (one HTTP
// exchange instead of two per task). Items fail independently; the call
// itself only fails on malformed input or cancellation.
func (s *Server) batchTasks(r *http.Request, req batchTasksReq) (batchTasksResp, error) {
	if len(req.Items) == 0 {
		return batchTasksResp{}, api.Errorf(http.StatusBadRequest, api.CodeInvalidArgument,
			"items required")
	}
	if len(req.Items) > maxBatchItems {
		return batchTasksResp{}, api.Errorf(http.StatusRequestEntityTooLarge, api.CodeBatchTooLarge,
			"%d items exceeds the %d per-call cap", len(req.Items), maxBatchItems)
	}
	projectID := r.PathValue("id")
	resp := batchTasksResp{Results: make([]batchTaskResult, 0, len(req.Items))}
	for _, item := range req.Items {
		if err := r.Context().Err(); err != nil {
			return batchTasksResp{}, err
		}
		res := s.runBatchItem(r, projectID, item)
		if res.Error != nil {
			resp.Failed++
		} else {
			resp.OK++
		}
		resp.Results = append(resp.Results, res)
	}
	return resp, nil
}

func (s *Server) runBatchItem(r *http.Request, projectID string, item BatchTaskItem) batchTaskResult {
	task, err := s.svc.RequestTask(r.Context(), projectID, item.TaggerID)
	if err != nil {
		return batchTaskResult{Error: toItemError(err)}
	}
	res := batchTaskResult{TaskID: task.ID, ResourceID: task.ResourceID}
	if len(item.Tags) == 0 {
		return res // request-only item; the task stays assigned
	}
	if err := s.svc.SubmitTask(r.Context(), projectID, task.ID, item.Tags); err != nil {
		res.Error = toItemError(err)
		return res
	}
	res.Submitted = true
	return res
}

// --- SSE telemetry stream -------------------------------------------------------

// sseHeartbeat keeps idle streams alive through proxies.
const sseHeartbeat = 15 * time.Second

// handleEvents streams a project's live run telemetry as Server-Sent
// Events, fed by the Monitor's subscriber fan-out (no polling):
//
//	event: hello     {"project_id": ..., "running": true, "spent": 12}
//	event: tick      {"series": "mean_stability", "x": 16, "y": 0.55}
//	event: run-event {"at": ..., "spent": 16, "kind": "promote", "detail": ...}
//	event: dropped   {"count": 3}          — this subscriber fell behind
//	event: finished  {"spent": 80, "error": ""}   — stream ends
//
// The stream ends at the finished event, on client disconnect, or on
// server drain.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	projectID := r.PathValue("id")
	info, err := s.svc.Project(r.Context(), projectID)
	if err != nil {
		s.kit.WriteError(w, r, err)
		return
	}
	sub, err := s.svc.Subscribe(r.Context(), projectID, s.sseBuffer)
	if err != nil {
		s.kit.WriteError(w, r, err)
		return
	}
	defer sub.Cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		s.kit.WriteError(w, r, api.Errorf(http.StatusInternalServerError, api.CodeInternal,
			"response writer does not support streaming"))
		return
	}

	s.metrics.AddSSEStream(1)
	defer s.metrics.AddSSEStream(-1)
	// accounted tracks how many of this subscriber's drops have reached the
	// metrics registry; the final delta is flushed on the way out so drops
	// that happen after the last delivered notification (e.g. a stalled
	// client whose stream is torn down) still count.
	var accounted int64
	defer func() {
		if d := sub.Dropped(); d > accounted {
			s.metrics.AddSSEDropped(d - accounted)
		}
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	// An SSE stream outlives the http.Server's WriteTimeout by design.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.WriteHeader(http.StatusOK)

	writeEvent := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	if !writeEvent("hello", map[string]any{
		"project_id": projectID, "running": info.Running, "spent": info.Spent,
	}) {
		return
	}

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	var reported int64
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case n, open := <-sub.C:
			if !open {
				return
			}
			if d := sub.Dropped(); d > reported {
				s.metrics.AddSSEDropped(d - accounted)
				accounted = d
				if !writeEvent("dropped", map[string]int64{"count": d - reported}) {
					return
				}
				reported = d
			}
			switch n.Type {
			case core.NotifyTick:
				if !writeEvent("tick", map[string]any{"series": n.Series, "x": n.X, "y": n.Y}) {
					return
				}
			case core.NotifyEvent:
				if !writeEvent("run-event", n.Event) {
					return
				}
			case core.NotifyFinished:
				writeEvent("finished", map[string]any{"spent": n.Spent, "error": n.Err})
				return
			}
		}
	}
}
