package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"itag/internal/core"
	"itag/internal/store"
)

type client struct {
	t   *testing.T
	srv *httptest.Server
}

func newClient(t *testing.T) *client {
	t.Helper()
	svc := core.NewService(store.NewCatalog(store.OpenMemory()), 99)
	srv := httptest.NewServer(New(svc, nil))
	t.Cleanup(srv.Close)
	return &client{t: t, srv: srv}
}

func (c *client) do(method, path string, body any, wantStatus int, out any) {
	c.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			c.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, c.srv.URL+path, &buf)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&e)
		c.t.Fatalf("%s %s: status %d, want %d (body: %v)", method, path, resp.StatusCode, wantStatus, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
}

func (c *client) register(kind, name string) string {
	c.t.Helper()
	var resp registerResp
	c.do("POST", "/api/"+kind, registerReq{Name: name}, http.StatusCreated, &resp)
	if resp.ID == "" {
		c.t.Fatal("empty ID")
	}
	return resp.ID
}

func (c *client) createSimProject(provider string, budget int) string {
	c.t.Helper()
	var resp registerResp
	c.do("POST", "/api/projects", CreateProjectReq{
		ProviderID: provider, Name: "t", Budget: budget, PayPerTask: 0.05,
		Simulate: true, NumResources: 8,
	}, http.StatusCreated, &resp)
	return resp.ID
}

func (c *client) waitDone(projectID string, timeout time.Duration) core.ProjectInfo {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var info core.ProjectInfo
		c.do("GET", "/api/projects/"+projectID, nil, http.StatusOK, &info)
		if !info.Running && info.Spent > 0 {
			return info
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.t.Fatal("project did not finish in time")
	return core.ProjectInfo{}
}

func TestHealthz(t *testing.T) {
	c := newClient(t)
	var resp map[string]string
	c.do("GET", "/api/healthz", nil, http.StatusOK, &resp)
	if resp["status"] != "ok" {
		t.Errorf("healthz = %v", resp)
	}
}

func TestRegisterAndGetUser(t *testing.T) {
	c := newClient(t)
	prov := c.register("providers", "alice")
	tagr := c.register("taggers", "bob")
	var u userResp
	c.do("GET", "/api/users/"+prov, nil, http.StatusOK, &u)
	if u.Role != store.RoleProvider || u.ApprovalRate != 1 {
		t.Errorf("provider = %+v", u)
	}
	c.do("GET", "/api/users/"+tagr, nil, http.StatusOK, &u)
	if u.Role != store.RoleTagger {
		t.Errorf("tagger = %+v", u)
	}
	c.do("GET", "/api/users/ghost", nil, http.StatusNotFound, nil)
}

func TestCreateProjectValidationHTTP(t *testing.T) {
	c := newClient(t)
	c.do("POST", "/api/projects", CreateProjectReq{}, http.StatusBadRequest, nil)
	c.do("POST", "/api/projects", map[string]any{"unknown_field": 1}, http.StatusBadRequest, nil)
	prov := c.register("providers", "p")
	c.do("POST", "/api/projects", CreateProjectReq{ProviderID: prov, Budget: -5, Simulate: true}, http.StatusBadRequest, nil)
}

func TestFullSimulatedProjectOverHTTP(t *testing.T) {
	c := newClient(t)
	prov := c.register("providers", "alice")
	proj := c.createSimProject(prov, 80)

	// List shows it.
	var infos []core.ProjectInfo
	c.do("GET", "/api/projects?provider="+prov, nil, http.StatusOK, &infos)
	if len(infos) != 1 || infos[0].Project.ID != proj {
		t.Fatalf("projects = %+v", infos)
	}

	// Controls before start.
	c.do("POST", "/api/projects/"+proj+"/resources/r0001/promote", nil, http.StatusOK, nil)
	c.do("POST", "/api/projects/"+proj+"/resources/r0002/stop", nil, http.StatusOK, nil)
	c.do("POST", "/api/projects/"+proj+"/resources/r0002/resume", nil, http.StatusOK, nil)
	c.do("POST", "/api/projects/"+proj+"/strategy", strategyReq{Strategy: "mu"}, http.StatusOK, nil)
	c.do("POST", "/api/projects/"+proj+"/strategy", strategyReq{Strategy: "bogus"}, http.StatusBadRequest, nil)

	// Run it.
	c.do("POST", "/api/projects/"+proj+"/start", nil, http.StatusAccepted, nil)
	info := c.waitDone(proj, 10*time.Second)
	if info.Spent != 80 {
		t.Errorf("spent = %d", info.Spent)
	}
	if info.MeanStability <= 0 {
		t.Error("no quality tracked")
	}

	// Series.
	var series seriesResp
	c.do("GET", "/api/projects/"+proj+"/series?name="+core.SeriesMeanStability, nil, http.StatusOK, &series)
	if len(series.X) == 0 || len(series.X) != len(series.Y) {
		t.Errorf("series = %d/%d points", len(series.X), len(series.Y))
	}
	c.do("GET", "/api/projects/"+proj+"/series?name=nope", nil, http.StatusBadRequest, nil)

	// Resource detail.
	var st core.ResourceStatus
	c.do("GET", "/api/projects/"+proj+"/resources/r0001", nil, http.StatusOK, &st)
	if st.ID != "r0001" {
		t.Errorf("detail = %+v", st)
	}
	c.do("GET", "/api/projects/"+proj+"/resources/zzz", nil, http.StatusBadRequest, nil)

	// Export.
	var rows []core.ExportedResource
	c.do("GET", "/api/projects/"+proj+"/export", nil, http.StatusOK, &rows)
	if len(rows) != 8 {
		t.Errorf("export rows = %d", len(rows))
	}

	// Add budget and re-run.
	c.do("POST", "/api/projects/"+proj+"/budget", budgetReq{Extra: 20}, http.StatusOK, nil)
	c.do("POST", "/api/projects/"+proj+"/start", nil, http.StatusAccepted, nil)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var i2 core.ProjectInfo
		c.do("GET", "/api/projects/"+proj, nil, http.StatusOK, &i2)
		if !i2.Running && i2.Spent == 100 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("extended run did not finish")
}

func TestManualTaggingOverHTTP(t *testing.T) {
	c := newClient(t)
	prov := c.register("providers", "alice")
	tagr := c.register("taggers", "bob")
	var resp registerResp
	c.do("POST", "/api/projects", CreateProjectReq{
		ProviderID: prov, Name: "manual", Budget: 2, PayPerTask: 0.25,
		Resources: []UploadedResource{
			{ID: "u1", Kind: "url", Name: "example.com"},
			{ID: "u2", Kind: "url", Name: "example.org"},
		},
	}, http.StatusCreated, &resp)
	proj := resp.ID

	// Manual projects refuse simulation.
	c.do("POST", "/api/projects/"+proj+"/start", nil, http.StatusBadRequest, nil)

	// Request and submit a task.
	var task store.TaskRec
	c.do("POST", "/api/projects/"+proj+"/tasks", requestTaskReq{TaggerID: tagr}, http.StatusCreated, &task)
	if task.ResourceID == "" || task.Reward != 0.25 {
		t.Fatalf("task = %+v", task)
	}
	c.do("POST", fmt.Sprintf("/api/projects/%s/tasks/%s/submit", proj, task.ID),
		submitTaskReq{Tags: []string{"go", "database"}}, http.StatusOK, nil)
	c.do("POST", fmt.Sprintf("/api/projects/%s/tasks/%s/submit", proj, task.ID),
		submitTaskReq{Tags: []string{"dup"}}, http.StatusBadRequest, nil)

	// Judge the post: approve pays the tagger.
	c.do("POST", fmt.Sprintf("/api/projects/%s/posts/%s/1/judge", proj, task.ResourceID),
		judgeReq{Approved: true}, http.StatusOK, nil)
	c.do("POST", fmt.Sprintf("/api/projects/%s/posts/%s/1/judge", proj, task.ResourceID),
		judgeReq{Approved: false}, http.StatusBadRequest, nil) // already judged
	c.do("POST", fmt.Sprintf("/api/projects/%s/posts/%s/99/judge", proj, task.ResourceID),
		judgeReq{Approved: true}, http.StatusNotFound, nil)

	var u userResp
	c.do("GET", "/api/users/"+tagr, nil, http.StatusOK, &u)
	if u.Earned != 0.25 || u.ApprovalRate != 1 {
		t.Errorf("tagger after approval = %+v", u)
	}

	// Tagger rates the provider.
	c.do("POST", "/api/providers/"+prov+"/rate", rateReq{Positive: true}, http.StatusOK, nil)
	c.do("POST", "/api/providers/ghost/rate", rateReq{Positive: true}, http.StatusNotFound, nil)

	// Bad seq parse.
	c.do("POST", fmt.Sprintf("/api/projects/%s/posts/%s/notanumber/judge", proj, task.ResourceID),
		judgeReq{Approved: true}, http.StatusBadRequest, nil)
}

func TestStopProjectOverHTTP(t *testing.T) {
	c := newClient(t)
	prov := c.register("providers", "a")
	proj := c.createSimProject(prov, 50)
	c.do("POST", "/api/projects/"+proj+"/stop", nil, http.StatusOK, nil)
	var info core.ProjectInfo
	c.do("GET", "/api/projects/"+proj, nil, http.StatusOK, &info)
	if info.Project.Status != store.ProjectStopped {
		t.Errorf("status = %s", info.Project.Status)
	}
}

func TestUnknownProjectRoutes(t *testing.T) {
	c := newClient(t)
	c.do("GET", "/api/projects/ghost", nil, http.StatusNotFound, nil)
	c.do("POST", "/api/projects/ghost/start", nil, http.StatusBadRequest, nil)
	c.do("GET", "/api/projects/ghost/export", nil, http.StatusBadRequest, nil)
}
