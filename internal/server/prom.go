package server

import (
	"net/http"

	"itag/internal/api"
	"itag/internal/store"
)

// PromHandler serves the full metrics registry in Prometheus text
// exposition format 0.0.4. It is deliberately not mounted on the API mux:
// scrape traffic belongs on the operational -debug-addr listener next to
// pprof, where it shares no connection budget with serving traffic. The
// JSON view at /api/v1/metrics is unchanged.
func (s *Server) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fams := s.metrics.Families()
		if st := s.svc.StoreStats(); st != nil {
			fams = append(fams, storeFamilies(st)...)
		}
		fams = append(fams, s.capacityFamilies()...)
		if s.resp != nil {
			fams = append(fams, s.resp.families()...)
		}
		if s.extraFams != nil {
			fams = append(fams, s.extraFams()...)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = api.WriteExposition(w, fams)
	})
}

// storeFamilies renders the store's durability counters as metric
// families. Counters that only ever grow are exposed as counters; sizes
// and sequence positions are gauges (compaction shrinks them).
func storeFamilies(st *store.Stats) []api.Family {
	one := func(name, help string, t string, v float64) api.Family {
		return api.Family{Name: name, Help: help, Type: t, Samples: []api.Sample{{Value: v}}}
	}
	fams := []api.Family{
		{
			Name: "itag_store_info", Type: api.TypeGauge,
			Help: "Store backend in use (constant 1, labeled by backend).",
			Samples: []api.Sample{{
				Labels: []api.Label{{Name: "backend", Value: st.Backend}},
				Value:  1,
			}},
		},
		one("itag_store_commits_total", "Committed mutations.", api.TypeCounter, float64(st.Commits)),
		one("itag_store_commit_batches_total", "Group-commit batches written.", api.TypeCounter, float64(st.CommitBatches)),
		one("itag_store_fsyncs_total", "WAL fsync calls.", api.TypeCounter, float64(st.Fsyncs)),
		one("itag_store_wal_bytes_total", "Bytes appended to the WAL.", api.TypeCounter, float64(st.WALBytes)),
		one("itag_store_wal_rotations_total", "WAL segment rotations.", api.TypeCounter, float64(st.Rotations)),
		one("itag_store_compactions_total", "Snapshot compactions completed.", api.TypeCounter, float64(st.Compactions)),
		one("itag_store_wal_segments", "Live WAL files (segments + legacy).", api.TypeGauge, float64(st.Segments)),
		one("itag_store_wal_segment_bytes", "Bytes recovery would replay right now.", api.TypeGauge, float64(st.SegmentBytes)),
		one("itag_store_snapshot_seq", "Sequence covered by the last snapshot (min across shards).", api.TypeGauge, float64(st.SnapshotSeq)),
		one("itag_store_recovered_records_total", "WAL records replayed at open.", api.TypeCounter, float64(st.RecoveredRecords)),
		one("itag_store_recovery_seconds", "Time the last open spent recovering.", api.TypeGauge, st.RecoveryMillis/1e3),
	}
	if st.Shards > 0 {
		fams = append(fams, one("itag_store_shards", "Shards behind the store.", api.TypeGauge, float64(st.Shards)))
	}
	return fams
}
