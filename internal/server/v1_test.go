package server

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"itag/internal/api"
	"itag/internal/core"
	"itag/internal/store"
)

// newV1Client is newClient plus service cleanup (background runs are
// interrupted at test end instead of leaking).
func newV1Client(t *testing.T) *client {
	t.Helper()
	svc := core.NewService(store.NewCatalog(store.OpenMemory()), 99)
	srv := httptest.NewServer(New(svc, nil))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return &client{t: t, srv: srv}
}

func TestV1HealthzAndAliasParity(t *testing.T) {
	c := newV1Client(t)
	var v1, legacy map[string]string
	c.do("GET", "/api/v1/healthz", nil, http.StatusOK, &v1)
	c.do("GET", "/api/healthz", nil, http.StatusOK, &legacy)
	if v1["status"] != "ok" || legacy["status"] != "ok" {
		t.Errorf("healthz: v1=%v legacy=%v", v1, legacy)
	}
}

func TestV1BatchRegisterTaggers(t *testing.T) {
	c := newV1Client(t)
	var resp batchRegisterResp
	c.do("POST", "/api/v1/taggers:batch",
		map[string][]string{"names": {"a", "b", "c"}}, http.StatusOK, &resp)
	if resp.OK != 3 || resp.Failed != 0 || len(resp.Results) != 3 {
		t.Fatalf("batch = %+v", resp)
	}
	for _, res := range resp.Results {
		var u userResp
		c.do("GET", "/api/v1/users/"+res.ID, nil, http.StatusOK, &u)
		if u.Role != store.RoleTagger {
			t.Errorf("registered user = %+v", u)
		}
	}
	// Empty and oversized batches are rejected whole.
	c.do("POST", "/api/v1/taggers:batch", map[string][]string{"names": {}}, http.StatusBadRequest, nil)
	big := make([]string, maxBatchItems+1)
	c.do("POST", "/api/v1/taggers:batch", map[string][]string{"names": big},
		http.StatusRequestEntityTooLarge, nil)
}

func TestV1BatchTasksPerItemErrors(t *testing.T) {
	c := newV1Client(t)
	prov := c.register("providers", "p")
	tagr := c.register("taggers", "t")
	var created registerResp
	c.do("POST", "/api/v1/projects", CreateProjectReq{
		ProviderID: prov, Name: "m", Budget: 3, PayPerTask: 0.1,
		Resources: []UploadedResource{
			{ID: "u1", Kind: "url", Name: "a"},
			{ID: "u2", Kind: "url", Name: "b"},
		},
	}, http.StatusCreated, &created)
	proj := created.ID

	var resp batchTasksResp
	c.do("POST", "/api/v1/projects/"+proj+"/tasks:batch", map[string]any{
		"items": []map[string]any{
			{"tagger_id": tagr, "tags": []string{"go"}},
			{"tagger_id": "ghost", "tags": []string{"x"}}, // unknown tagger
			{"tagger_id": tagr},                           // request-only
			{"tagger_id": tagr, "tags": []string{"db"}},   // ok
			{"tagger_id": tagr, "tags": []string{"too"}},  // budget exhausted
		},
	}, http.StatusOK, &resp)

	if resp.OK != 3 || resp.Failed != 2 {
		t.Fatalf("batch = ok %d failed %d (%+v)", resp.OK, resp.Failed, resp.Results)
	}
	if r := resp.Results[0]; !r.Submitted || r.TaskID == "" {
		t.Errorf("item 0 = %+v", r)
	}
	if r := resp.Results[1]; r.Error == nil || r.Error.Code != api.CodeInvalidArgument {
		t.Errorf("item 1 = %+v", r)
	}
	if r := resp.Results[2]; r.Submitted || r.TaskID == "" || r.Error != nil {
		t.Errorf("request-only item = %+v", r)
	}
	if r := resp.Results[4]; r.Error == nil {
		t.Errorf("post-budget item = %+v", r)
	}
}

func TestV1MetricsEndpoint(t *testing.T) {
	c := newV1Client(t)
	var created registerResp
	c.do("POST", "/api/v1/providers", registerReq{Name: "p"}, http.StatusCreated, &created)
	var snap struct {
		api.Snapshot
		Store *store.Stats `json:"store"`
	}
	c.do("GET", "/api/v1/metrics", nil, http.StatusOK, &snap)
	if snap.TotalRequests == 0 {
		t.Fatalf("metrics = %+v", snap)
	}
	found := false
	for _, r := range snap.Routes {
		if r.Route == "POST /api/v1/providers" && r.Count == 1 && r.Status2xx == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("provider route not tracked: %+v", snap.Routes)
	}
	// The durability-layer counters ride along; registering the provider
	// committed at least one record to the (memory) store.
	if snap.Store == nil || snap.Store.Backend != "memory" || snap.Store.Commits == 0 {
		t.Errorf("store stats missing from metrics: %+v", snap.Store)
	}
}

func TestV1RequestIDPropagation(t *testing.T) {
	c := newV1Client(t)
	req, err := http.NewRequest("GET", c.srv.URL+"/api/v1/users/ghost", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "load-test-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "load-test-7" {
		t.Errorf("echoed request id = %q", got)
	}
	buf := new(strings.Builder)
	if _, err := bufio.NewReader(resp.Body).WriteTo(buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"request_id":"load-test-7"`) {
		t.Errorf("envelope missing request id: %s", buf)
	}
}

// TestV1EventsStreamDuringRun asserts the ISSUE acceptance bar at the
// HTTP layer: the SSE endpoint streams at least quality-tick and finished
// events while a simulated run executes.
func TestV1EventsStreamDuringRun(t *testing.T) {
	c := newV1Client(t)
	prov := c.register("providers", "p")
	proj := c.createSimProject(prov, 60)

	resp, err := http.Get(c.srv.URL + "/api/v1/projects/" + proj + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	c.do("POST", "/api/v1/projects/"+proj+"/start", nil, http.StatusAccepted, nil)

	types := map[string]int{}
	deadline := time.After(30 * time.Second)
	lines := make(chan string)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
scan:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				break scan
			}
			if strings.HasPrefix(line, "event: ") {
				ev := strings.TrimPrefix(line, "event: ")
				types[ev]++
				if ev == "finished" {
					break scan
				}
			}
		case <-deadline:
			t.Fatalf("no finished event; saw %v", types)
		}
	}
	if types["hello"] != 1 || types["tick"] == 0 || types["finished"] != 1 {
		t.Errorf("event mix = %v", types)
	}
	if types["dropped"] != 0 {
		t.Errorf("dropped events on a tiny run: %v", types)
	}
}
