// Package server exposes the iTag system over a versioned HTTP JSON API —
// the scriptable equivalent of the provider and tagger web UIs in the demo
// (paper Figs. 3–8). The primary surface lives under /api/v1 and is built
// on the internal/api handler kit: typed handlers, a structured error
// envelope with machine-readable codes, request IDs, per-route timeouts
// and metrics. Every UI action maps to one endpoint (full request/response
// reference: docs/API.md):
//
//	GET  /api/v1/healthz                         liveness probe
//	GET  /api/v1/metrics                         in-flight / per-route latency metrics
//
//	POST /api/v1/providers                       register provider
//	POST /api/v1/taggers                         register tagger
//	POST /api/v1/taggers:batch                   register many taggers at once
//	GET  /api/v1/users/{id}                      approval rate / earnings
//	POST /api/v1/providers/{id}/rate             tagger rates a provider
//
//	GET  /api/v1/projects?provider=ID            main provider screen (Fig. 3; cursor-paginated)
//	POST /api/v1/projects                        Add Project (Fig. 4)
//	GET  /api/v1/projects/{id}                   project row + live stats
//	POST /api/v1/projects/{id}/start             run with simulated taggers
//	POST /api/v1/projects/{id}/stop              Stop project
//	POST /api/v1/projects/{id}/budget            add budget
//	POST /api/v1/projects/{id}/strategy          switch strategy (Fig. 5)
//	GET  /api/v1/projects/{id}/series?name=N     quality curve (Fig. 5)
//	GET  /api/v1/projects/{id}/events            live run telemetry over SSE
//	GET  /api/v1/projects/{id}/export            export tagged resources (cursor-paginated)
//	GET  /api/v1/projects/{id}/resources/{rid}   single resource (Fig. 6)
//	POST /api/v1/projects/{id}/resources/{rid}/promote|stop|resume
//
//	POST /api/v1/projects/{id}/tasks             tagger requests a task (Fig. 7)
//	POST /api/v1/projects/{id}/tasks:batch       request+submit many tasks in one call
//	POST /api/v1/projects/{id}/tasks/{tid}/submit   tagging screen (Fig. 8)
//	POST /api/v1/projects/{id}/posts/{rid}/{seq}/judge  approve/disapprove
//
// Every pre-v1 route (/api/providers, /api/projects/..., ...) remains
// mounted as a thin alias over the same v1 handlers, with the legacy
// {"error": "<message>"} error body, so existing clients keep working.
package server

import (
	"context"
	"errors"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"itag/internal/api"
	"itag/internal/capacity"
	"itag/internal/core"
	"itag/internal/dataset"
	"itag/internal/errs"
	"itag/internal/store"
)

// statusClientClosedRequest is the nginx convention for "client went away
// before the response"; net/http has no constant for it.
const statusClientClosedRequest = 499

// Options tunes a Server beyond the defaults New picks.
type Options struct {
	// Logger receives the access log and panic reports; nil for silence.
	Logger *log.Logger
	// RouteTimeout bounds every non-streaming route (default 30s; < 0
	// disables).
	RouteTimeout time.Duration
	// SSEBuffer is the per-subscriber notification buffer for the events
	// stream (default 512). Small values make slow consumers drop sooner;
	// tests use 1–2 to exercise the drop path deterministically.
	SSEBuffer int
	// ExtraFamilies, when non-nil, contributes additional metric families
	// to PromHandler's exposition. The cluster layer injects its
	// replication watermarks through this hook so the pinned route and
	// store families stay untouched.
	ExtraFamilies func() []api.Family
	// Admission, when non-nil, puts the task routes behind queueing-model
	// admission control: requests past the fitted saturation knee are
	// shed with 429 resource_exhausted and a Retry-After hint. Health,
	// metrics and SSE routes are never gated.
	Admission *AdmissionOptions
	// RespCacheBytes bounds the encoded-response cache behind the hot GET
	// routes (project dashboard, resource detail, export): 0 picks the
	// 8 MiB default, < 0 disables the cache (those routes then encode per
	// request through the pooled pipeline, without ETags). The cache is
	// also disabled when the service's catalog keeps no write clocks.
	RespCacheBytes int64
}

// Server is the HTTP frontend over a core.Service.
type Server struct {
	svc          *core.Service
	mux          *http.ServeMux
	kit          *api.Kit
	metrics      *api.Metrics
	routeTimeout time.Duration
	sseBuffer    int
	extraFams    func() []api.Family
	admission    *capacity.Governor // nil when admission control is off
	resp         *respCache         // nil when the encoded-response cache is off
	handler      http.Handler
}

// New builds a Server with default options; logger may be nil for silence.
func New(svc *core.Service, logger *log.Logger) *Server {
	return NewWith(svc, Options{Logger: logger})
}

// NewWith builds a Server with explicit options.
func NewWith(svc *core.Service, opts Options) *Server {
	if opts.RouteTimeout == 0 {
		opts.RouteTimeout = 30 * time.Second
	}
	if opts.SSEBuffer <= 0 {
		opts.SSEBuffer = 512
	}
	s := &Server{
		svc:          svc,
		mux:          http.NewServeMux(),
		metrics:      api.NewMetrics(),
		routeTimeout: opts.RouteTimeout,
		sseBuffer:    opts.SSEBuffer,
		extraFams:    opts.ExtraFamilies,
	}
	s.kit = &api.Kit{MapError: mapErr, Metrics: s.metrics}
	if opts.RespCacheBytes >= 0 {
		s.resp = newRespCache(svc.ServeVersion, opts.RespCacheBytes)
	}
	s.initAdmission(opts.Admission)
	s.routes()
	s.handler = api.Chain(s.mux,
		api.RequestID,
		api.AccessLog(opts.Logger),
		api.Recover(s.kit, opts.Logger),
	)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Metrics exposes the per-route metrics registry (used by tests and the
// metrics endpoint).
func (s *Server) Metrics() *api.Metrics { return s.metrics }

// RespCacheStats reports the encoded-response cache counters (all zero
// when the cache is disabled).
func (s *Server) RespCacheStats() RespCacheStats { return s.resp.stats() }

// route mounts a v1 route with metrics tracking and the per-route timeout.
func (s *Server) route(pattern string, h http.Handler) {
	if s.routeTimeout > 0 {
		h = api.Timeout(s.routeTimeout)(h)
	}
	s.mux.Handle(pattern, s.metrics.Track(pattern, h))
}

// routeStream mounts a v1 streaming route: metrics, but no timeout (an SSE
// stream lives as long as the client wants).
func (s *Server) routeStream(pattern string, h http.Handler) {
	s.mux.Handle(pattern, s.metrics.Track(pattern, h))
}

// routeCached mounts a cached GET route: metrics, but no per-route
// timeout. A hit answers from memory in microseconds; a miss's compute
// still observes the request context's cancellation (every core.Service
// entry point checks it), and skipping the deadline keeps a timer
// allocation and three context allocations off the hottest path.
func (s *Server) routeCached(pattern string, h http.Handler) {
	s.mux.Handle(pattern, s.metrics.Track(pattern, h))
}

// legacyDeprecation is the RFC 9745 Deprecation header value on every
// legacy /api/* alias: 2026-08-08T00:00:00Z, the release that documented
// /api/v1 as the successor surface. Shared slices; never mutated.
var legacyDeprecation = []string{"@1786147200"}

// alias mounts a legacy /api/* route over a v1 handler: same semantics,
// pre-v1 string error bodies, plus the RFC 9745 deprecation headers
// (Deprecation and a successor-version Link naming the request's /api/v1
// equivalent).
func (s *Server) alias(pattern string, h http.Handler) {
	h = withDeprecation(h)
	h = api.WithLegacy(h)
	if s.routeTimeout > 0 {
		h = api.Timeout(s.routeTimeout)(h)
	}
	s.mux.Handle(pattern, s.metrics.Track(pattern, h))
}

// withDeprecation stamps the deprecation headers on a legacy route:
// "GET /api/projects/p1" → Link: </api/v1/projects/p1>;
// rel="successor-version". Every legacy path maps to its v1 successor by
// prefix substitution alone — the alias table mounts the same patterns.
func withDeprecation(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hd := w.Header()
		hd["Deprecation"] = legacyDeprecation
		hd["Link"] = []string{"</api/v1" + strings.TrimPrefix(r.URL.Path, "/api") + `>; rel="successor-version"`}
		h.ServeHTTP(w, r)
	})
}

func (s *Server) routes() {
	k := s.kit

	healthz := api.Handle(k, http.StatusOK, func(*http.Request, api.None) (map[string]string, error) {
		return map[string]string{"status": "ok"}, nil
	})

	registerProvider := api.Handle(k, http.StatusCreated, s.registerProvider)
	registerTagger := api.Handle(k, http.StatusCreated, s.registerTagger)
	getUser := api.Handle(k, http.StatusOK, s.getUser)
	rateProvider := api.Handle(k, http.StatusOK, s.rateProvider)

	createProject := api.Handle(k, http.StatusCreated, s.createProject)
	getProject := api.Handle(k, http.StatusOK, s.getProject)
	startProject := api.Handle(k, http.StatusAccepted, s.startProject)
	stopProject := api.Handle(k, http.StatusOK, s.stopProject)
	addBudget := api.Handle(k, http.StatusOK, s.addBudget)
	switchStrategy := api.Handle(k, http.StatusOK, s.switchStrategy)
	series := api.Handle(k, http.StatusOK, s.series)
	resourceDetail := api.Handle(k, http.StatusOK, s.resourceDetail)
	promote := s.resourceAction((*core.Service).Promote)
	stopRes := s.resourceAction((*core.Service).StopResource)
	resumeRes := s.resourceAction((*core.Service).ResumeResource)

	requestTask := api.Handle(k, http.StatusCreated, s.requestTask)
	submitTask := api.Handle(k, http.StatusOK, s.submitTask)
	judgePost := api.Handle(k, http.StatusOK, s.judgePost)

	// Cached v1 variants of the hot GETs: encoded-response cache, ETag /
	// If-None-Match revalidation, Cache-Control: no-cache. The legacy
	// aliases keep the plain handlers so their wire surface (headers
	// included) stays exactly pre-v1.
	getProjectCached := s.cachedJSON(respProject, emptyKeyB, func(r *http.Request) (any, error) {
		return s.svc.Project(r.Context(), r.PathValue("id"))
	})
	resourceDetailCached := s.cachedJSON(respDetail, ridKeyB, func(r *http.Request) (any, error) {
		return s.svc.ResourceDetail(r.Context(), r.PathValue("id"), r.PathValue("rid"))
	})
	exportCached := s.cachedJSON(respExport, queryKeyB, func(r *http.Request) (any, error) {
		return s.exportV1(r, api.None{})
	})

	// --- v1 ---------------------------------------------------------------
	s.route("GET /api/v1/healthz", healthz)
	s.route("GET /api/v1/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// HTTP counters plus the store's durability-layer counters (group
		// commit batching, fsyncs, segments, recovery time).
		type metricsResp struct {
			api.Snapshot
			Store *store.Stats `json:"store,omitempty"`
		}
		err := api.WriteJSON(w, http.StatusOK, metricsResp{
			Snapshot: s.metrics.Snapshot(),
			Store:    s.svc.StoreStats(),
		})
		if err != nil && errs.CategoryOf(err) != errs.CategoryIO {
			// Marshal failure: nothing was written yet, answer the envelope.
			s.kit.WriteError(w, r, err)
		}
	}))

	s.route("POST /api/v1/providers", registerProvider)
	s.route("POST /api/v1/taggers", registerTagger)
	s.route("POST /api/v1/taggers:batch", api.Handle(k, http.StatusOK, s.batchRegisterTaggers))
	s.route("GET /api/v1/users/{id}", getUser)
	s.route("POST /api/v1/providers/{id}/rate", rateProvider)

	s.route("GET /api/v1/projects", api.Handle(k, http.StatusOK, s.listProjectsV1))
	s.route("POST /api/v1/projects", createProject)
	s.routeCached("GET /api/v1/projects/{id}", getProjectCached)
	s.route("POST /api/v1/projects/{id}/start", startProject)
	s.route("POST /api/v1/projects/{id}/stop", stopProject)
	s.route("POST /api/v1/projects/{id}/budget", addBudget)
	s.route("POST /api/v1/projects/{id}/strategy", switchStrategy)
	s.route("GET /api/v1/projects/{id}/series", series)
	s.routeCached("GET /api/v1/projects/{id}/export", exportCached)
	s.routeStream("GET /api/v1/projects/{id}/events", http.HandlerFunc(s.handleEvents))
	s.routeCached("GET /api/v1/projects/{id}/resources/{rid}", resourceDetailCached)
	s.route("POST /api/v1/projects/{id}/resources/{rid}/promote", promote)
	s.route("POST /api/v1/projects/{id}/resources/{rid}/stop", stopRes)
	s.route("POST /api/v1/projects/{id}/resources/{rid}/resume", resumeRes)

	s.routeLimited("POST /api/v1/projects/{id}/tasks", requestTask)
	s.routeLimited("POST /api/v1/projects/{id}/tasks:batch", api.Handle(k, http.StatusOK, s.batchTasks))
	s.routeLimited("POST /api/v1/projects/{id}/tasks/{tid}/submit", submitTask)
	s.route("POST /api/v1/projects/{id}/posts/{rid}/{seq}/judge", judgePost)

	// --- legacy aliases (pre-v1 surface; see docs/API.md appendix) --------
	s.alias("GET /api/healthz", healthz)
	s.alias("POST /api/providers", registerProvider)
	s.alias("POST /api/taggers", registerTagger)
	s.alias("GET /api/users/{id}", getUser)
	s.alias("POST /api/providers/{id}/rate", rateProvider)

	s.alias("GET /api/projects", api.Handle(k, http.StatusOK, s.listProjectsLegacy))
	s.alias("POST /api/projects", createProject)
	s.alias("GET /api/projects/{id}", getProject)
	s.alias("POST /api/projects/{id}/start", startProject)
	s.alias("POST /api/projects/{id}/stop", stopProject)
	s.alias("POST /api/projects/{id}/budget", addBudget)
	s.alias("POST /api/projects/{id}/strategy", switchStrategy)
	s.alias("GET /api/projects/{id}/series", series)
	s.alias("GET /api/projects/{id}/export", api.Handle(k, http.StatusOK, s.exportLegacy))
	s.alias("GET /api/projects/{id}/resources/{rid}", resourceDetail)
	s.alias("POST /api/projects/{id}/resources/{rid}/promote", promote)
	s.alias("POST /api/projects/{id}/resources/{rid}/stop", stopRes)
	s.alias("POST /api/projects/{id}/resources/{rid}/resume", resumeRes)

	s.aliasLimited("POST /api/projects/{id}/tasks", requestTask)
	s.aliasLimited("POST /api/projects/{id}/tasks/{tid}/submit", submitTask)
	s.alias("POST /api/projects/{id}/posts/{rid}/{seq}/judge", judgePost)
}

// mapErr translates service errors into transport errors with
// machine-readable codes (documented in docs/API.md). Context sentinels win
// first — a route timeout must surface as timeout even when it interrupts a
// taxonomy-classified operation. Everything else derives its status and code
// from the error taxonomy (internal/errs); errors with no taxonomy keep the
// historical 400/invalid_argument fallback.
func mapErr(err error) *api.Error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return api.Wrap(http.StatusGatewayTimeout, api.CodeTimeout, err)
	case errors.Is(err, context.Canceled):
		return api.Wrap(statusClientClosedRequest, api.CodeCanceled, err)
	}
	if te := errs.Find(err); te != nil {
		return api.FromTaxonomy(te, err)
	}
	return api.Wrap(http.StatusBadRequest, api.CodeInvalidArgument, err)
}

// --- users --------------------------------------------------------------------

type registerReq struct {
	Name string `json:"name"`
}

type registerResp struct {
	ID string `json:"id"`
}

func (s *Server) registerProvider(r *http.Request, req registerReq) (registerResp, error) {
	id, err := s.svc.RegisterProvider(r.Context(), req.Name)
	if err != nil {
		return registerResp{}, err
	}
	return registerResp{ID: id}, nil
}

func (s *Server) registerTagger(r *http.Request, req registerReq) (registerResp, error) {
	id, err := s.svc.RegisterTagger(r.Context(), req.Name)
	if err != nil {
		return registerResp{}, err
	}
	return registerResp{ID: id}, nil
}

type userResp struct {
	store.UserRec
	ApprovalRate float64 `json:"approval_rate"`
	Earned       float64 `json:"earned_total"`
}

func (s *Server) getUser(r *http.Request, _ api.None) (userResp, error) {
	id := r.PathValue("id")
	rec, err := s.svc.Catalog().GetUser(id)
	if err != nil {
		return userResp{}, err
	}
	resp := userResp{UserRec: rec}
	if rec.Role == store.RoleTagger {
		resp.ApprovalRate = s.svc.Users().TaggerApprovalRate(id)
		resp.Earned = s.svc.Ledger().Earned(id)
	} else {
		resp.ApprovalRate = s.svc.Users().ProviderApprovalRate(id)
	}
	return resp, nil
}

type rateReq struct {
	Positive bool `json:"positive"`
}

func (s *Server) rateProvider(r *http.Request, req rateReq) (map[string]bool, error) {
	if err := s.svc.RateProvider(r.Context(), r.PathValue("id"), req.Positive); err != nil {
		return nil, err
	}
	return map[string]bool{"recorded": true}, nil
}

// --- projects -----------------------------------------------------------------

// CreateProjectReq is the Add Project form (Fig. 4).
type CreateProjectReq struct {
	ProviderID   string             `json:"provider_id"`
	Name         string             `json:"name"`
	Description  string             `json:"description,omitempty"`
	Kind         string             `json:"kind,omitempty"`
	Budget       int                `json:"budget"`
	PayPerTask   float64            `json:"pay_per_task"`
	Strategy     string             `json:"strategy,omitempty"`
	Platform     string             `json:"platform,omitempty"`
	Simulate     bool               `json:"simulate,omitempty"`
	NumResources int                `json:"num_resources,omitempty"`
	Resources    []UploadedResource `json:"resources,omitempty"`
}

// UploadedResource is one uploaded resource row.
type UploadedResource struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	Name string `json:"name"`
}

func (s *Server) createProject(r *http.Request, req CreateProjectReq) (registerResp, error) {
	spec := core.ProjectSpec{
		ProviderID: req.ProviderID, Name: req.Name, Description: req.Description,
		Kind: req.Kind, Budget: req.Budget, PayPerTask: req.PayPerTask,
		Strategy: req.Strategy, Platform: req.Platform,
		Simulate: req.Simulate, NumResources: req.NumResources,
	}
	for _, ur := range req.Resources {
		spec.Resources = append(spec.Resources, dataset.Resource{
			ID: ur.ID, Kind: dataset.Kind(ur.Kind), Name: ur.Name, Popularity: 1,
		})
	}
	id, err := s.svc.CreateProject(r.Context(), spec)
	if err != nil {
		return registerResp{}, err
	}
	return registerResp{ID: id}, nil
}

func (s *Server) listProjectsLegacy(r *http.Request, _ api.None) ([]core.ProjectInfo, error) {
	return s.svc.Projects(r.Context(), r.URL.Query().Get("provider"))
}

func (s *Server) getProject(r *http.Request, _ api.None) (core.ProjectInfo, error) {
	return s.svc.Project(r.Context(), r.PathValue("id"))
}

func (s *Server) startProject(r *http.Request, _ api.None) (map[string]bool, error) {
	if err := s.svc.StartSimulation(r.Context(), r.PathValue("id")); err != nil {
		return nil, err
	}
	s.refreshProject(r.PathValue("id"))
	return map[string]bool{"started": true}, nil
}

func (s *Server) stopProject(r *http.Request, _ api.None) (map[string]bool, error) {
	if err := s.svc.StopProject(r.Context(), r.PathValue("id")); err != nil {
		return nil, err
	}
	s.refreshProject(r.PathValue("id"))
	return map[string]bool{"stopped": true}, nil
}

type budgetReq struct {
	Extra int `json:"extra"`
}

func (s *Server) addBudget(r *http.Request, req budgetReq) (map[string]bool, error) {
	if err := s.svc.AddBudget(r.Context(), r.PathValue("id"), req.Extra); err != nil {
		return nil, err
	}
	s.refreshProject(r.PathValue("id"))
	return map[string]bool{"added": true}, nil
}

type strategyReq struct {
	Strategy string `json:"strategy"`
}

func (s *Server) switchStrategy(r *http.Request, req strategyReq) (map[string]bool, error) {
	if err := s.svc.SwitchStrategy(r.Context(), r.PathValue("id"), req.Strategy); err != nil {
		return nil, err
	}
	s.refreshProject(r.PathValue("id"))
	return map[string]bool{"switched": true}, nil
}

type seriesResp struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

func (s *Server) series(r *http.Request, _ api.None) (seriesResp, error) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = core.SeriesMeanStability
	}
	xs, ys, err := s.svc.QualitySeries(r.Context(), r.PathValue("id"), name)
	if err != nil {
		return seriesResp{}, err
	}
	return seriesResp{Name: name, X: xs, Y: ys}, nil
}

func (s *Server) exportLegacy(r *http.Request, _ api.None) ([]core.ExportedResource, error) {
	return s.svc.Export(r.Context(), r.PathValue("id"))
}

func (s *Server) resourceDetail(r *http.Request, _ api.None) (core.ResourceStatus, error) {
	return s.svc.ResourceDetail(r.Context(), r.PathValue("id"), r.PathValue("rid"))
}

func (s *Server) resourceAction(action func(*core.Service, context.Context, string, string) error) http.HandlerFunc {
	return api.Handle(s.kit, http.StatusOK, func(r *http.Request, _ api.None) (map[string]bool, error) {
		if err := action(s.svc, r.Context(), r.PathValue("id"), r.PathValue("rid")); err != nil {
			return nil, err
		}
		s.refreshResource(r.PathValue("id"), r.PathValue("rid"))
		return map[string]bool{"ok": true}, nil
	})
}

// --- tagger flow ----------------------------------------------------------------

type requestTaskReq struct {
	TaggerID string `json:"tagger_id"`
}

func (s *Server) requestTask(r *http.Request, req requestTaskReq) (store.TaskRec, error) {
	task, err := s.svc.RequestTask(r.Context(), r.PathValue("id"), req.TaggerID)
	if err != nil {
		return store.TaskRec{}, err
	}
	s.refreshResource(r.PathValue("id"), task.ResourceID)
	return task, nil
}

type submitTaskReq struct {
	Tags []string `json:"tags"`
}

func (s *Server) submitTask(r *http.Request, req submitTaskReq) (map[string]bool, error) {
	if err := s.svc.SubmitTask(r.Context(), r.PathValue("id"), r.PathValue("tid"), req.Tags); err != nil {
		return nil, err
	}
	s.refreshProject(r.PathValue("id"))
	return map[string]bool{"submitted": true}, nil
}

type judgeReq struct {
	Approved bool `json:"approved"`
}

func (s *Server) judgePost(r *http.Request, req judgeReq) (map[string]bool, error) {
	seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
	if err != nil {
		return nil, api.Errorf(http.StatusBadRequest, api.CodeInvalidArgument,
			"invalid post sequence: %v", err)
	}
	if err := s.svc.JudgePost(r.Context(), r.PathValue("id"), r.PathValue("rid"), seq, req.Approved); err != nil {
		return nil, err
	}
	s.refreshResource(r.PathValue("id"), r.PathValue("rid"))
	return map[string]bool{"judged": true}, nil
}

// parsePageParams reads ?limit= and ?cursor= (limit 0 = everything).
func parsePageParams(r *http.Request) (limit int, cursor string, err error) {
	q := r.URL.Query()
	cursor = q.Get("cursor")
	if raw := q.Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 0 {
			return 0, "", api.Errorf(http.StatusBadRequest, api.CodeInvalidArgument,
				"invalid limit %q", raw)
		}
	}
	return limit, cursor, nil
}
