// Package server exposes the iTag system over an HTTP JSON API — the
// scriptable equivalent of the provider and tagger web UIs in the demo
// (paper Figs. 3–8). Every UI action maps to one endpoint (full
// request/response reference: docs/API.md):
//
//	GET  /api/healthz                         liveness probe
//
//	POST /api/providers                       register provider
//	POST /api/taggers                         register tagger
//	GET  /api/users/{id}                      approval rate / earnings
//	POST /api/providers/{id}/rate             tagger rates a provider
//
//	GET  /api/projects?provider=ID            main provider screen (Fig. 3)
//	POST /api/projects                        Add Project (Fig. 4)
//	GET  /api/projects/{id}                   project row + live stats
//	POST /api/projects/{id}/start             run with simulated taggers
//	POST /api/projects/{id}/stop              Stop project
//	POST /api/projects/{id}/budget            add budget
//	POST /api/projects/{id}/strategy          switch strategy (Fig. 5)
//	GET  /api/projects/{id}/series?name=N     quality curve (Fig. 5)
//	GET  /api/projects/{id}/export            export tagged resources
//	GET  /api/projects/{id}/resources/{rid}   single resource (Fig. 6)
//	POST /api/projects/{id}/resources/{rid}/promote|stop|resume
//
//	POST /api/projects/{id}/tasks             tagger requests a task (Fig. 7)
//	POST /api/projects/{id}/tasks/{tid}/submit   tagging screen (Fig. 8)
//	POST /api/projects/{id}/posts/{rid}/{seq}/judge  approve/disapprove
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"

	"itag/internal/core"
	"itag/internal/dataset"
	"itag/internal/store"
)

// Server is the HTTP frontend over a core.Service.
type Server struct {
	svc *core.Service
	mux *http.ServeMux
	log *log.Logger
}

// New builds a Server; logger may be nil for silence.
func New(svc *core.Service, logger *log.Logger) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), log: logger}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.log != nil {
		s.log.Printf("%s %s", r.Method, r.URL.Path)
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("POST /api/providers", s.handleRegisterProvider)
	s.mux.HandleFunc("POST /api/taggers", s.handleRegisterTagger)
	s.mux.HandleFunc("GET /api/users/{id}", s.handleGetUser)
	s.mux.HandleFunc("POST /api/providers/{id}/rate", s.handleRateProvider)

	s.mux.HandleFunc("GET /api/projects", s.handleListProjects)
	s.mux.HandleFunc("POST /api/projects", s.handleCreateProject)
	s.mux.HandleFunc("GET /api/projects/{id}", s.handleGetProject)
	s.mux.HandleFunc("POST /api/projects/{id}/start", s.handleStartProject)
	s.mux.HandleFunc("POST /api/projects/{id}/stop", s.handleStopProject)
	s.mux.HandleFunc("POST /api/projects/{id}/budget", s.handleAddBudget)
	s.mux.HandleFunc("POST /api/projects/{id}/strategy", s.handleSwitchStrategy)
	s.mux.HandleFunc("GET /api/projects/{id}/series", s.handleSeries)
	s.mux.HandleFunc("GET /api/projects/{id}/export", s.handleExport)
	s.mux.HandleFunc("GET /api/projects/{id}/resources/{rid}", s.handleResourceDetail)
	s.mux.HandleFunc("POST /api/projects/{id}/resources/{rid}/promote", s.resourceAction((*core.Service).Promote))
	s.mux.HandleFunc("POST /api/projects/{id}/resources/{rid}/stop", s.resourceAction((*core.Service).StopResource))
	s.mux.HandleFunc("POST /api/projects/{id}/resources/{rid}/resume", s.resourceAction((*core.Service).ResumeResource))

	s.mux.HandleFunc("POST /api/projects/{id}/tasks", s.handleRequestTask)
	s.mux.HandleFunc("POST /api/projects/{id}/tasks/{tid}/submit", s.handleSubmitTask)
	s.mux.HandleFunc("POST /api/projects/{id}/posts/{rid}/{seq}/judge", s.handleJudgePost)
}

// --- helpers -------------------------------------------------------------------

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

// statusFor maps service errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, store.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, core.ErrProjectRunning):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// --- users --------------------------------------------------------------------

type registerReq struct {
	Name string `json:"name"`
}

type registerResp struct {
	ID string `json:"id"`
}

func (s *Server) handleRegisterProvider(w http.ResponseWriter, r *http.Request) {
	var req registerReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.svc.RegisterProvider(req.Name)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, registerResp{ID: id})
}

func (s *Server) handleRegisterTagger(w http.ResponseWriter, r *http.Request) {
	var req registerReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.svc.RegisterTagger(req.Name)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, registerResp{ID: id})
}

type userResp struct {
	store.UserRec
	ApprovalRate float64 `json:"approval_rate"`
	Earned       float64 `json:"earned_total"`
}

func (s *Server) handleGetUser(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, err := s.svc.Catalog().GetUser(id)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	resp := userResp{UserRec: rec}
	if rec.Role == store.RoleTagger {
		resp.ApprovalRate = s.svc.Users().TaggerApprovalRate(id)
		resp.Earned = s.svc.Ledger().Earned(id)
	} else {
		resp.ApprovalRate = s.svc.Users().ProviderApprovalRate(id)
	}
	writeJSON(w, http.StatusOK, resp)
}

type rateReq struct {
	Positive bool `json:"positive"`
}

func (s *Server) handleRateProvider(w http.ResponseWriter, r *http.Request) {
	var req rateReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id := r.PathValue("id")
	if _, err := s.svc.Catalog().GetUser(id); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	s.svc.RateProvider(id, req.Positive)
	writeJSON(w, http.StatusOK, map[string]bool{"recorded": true})
}

// --- projects -----------------------------------------------------------------

// CreateProjectReq is the Add Project form (Fig. 4).
type CreateProjectReq struct {
	ProviderID   string             `json:"provider_id"`
	Name         string             `json:"name"`
	Description  string             `json:"description,omitempty"`
	Kind         string             `json:"kind,omitempty"`
	Budget       int                `json:"budget"`
	PayPerTask   float64            `json:"pay_per_task"`
	Strategy     string             `json:"strategy,omitempty"`
	Platform     string             `json:"platform,omitempty"`
	Simulate     bool               `json:"simulate,omitempty"`
	NumResources int                `json:"num_resources,omitempty"`
	Resources    []UploadedResource `json:"resources,omitempty"`
}

// UploadedResource is one uploaded resource row.
type UploadedResource struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	Name string `json:"name"`
}

func (s *Server) handleCreateProject(w http.ResponseWriter, r *http.Request) {
	var req CreateProjectReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spec := core.ProjectSpec{
		ProviderID: req.ProviderID, Name: req.Name, Description: req.Description,
		Kind: req.Kind, Budget: req.Budget, PayPerTask: req.PayPerTask,
		Strategy: req.Strategy, Platform: req.Platform,
		Simulate: req.Simulate, NumResources: req.NumResources,
	}
	for _, ur := range req.Resources {
		spec.Resources = append(spec.Resources, dataset.Resource{
			ID: ur.ID, Kind: dataset.Kind(ur.Kind), Name: ur.Name, Popularity: 1,
		})
	}
	id, err := s.svc.CreateProject(spec)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, registerResp{ID: id})
}

func (s *Server) handleListProjects(w http.ResponseWriter, r *http.Request) {
	infos, err := s.svc.Projects(r.URL.Query().Get("provider"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGetProject(w http.ResponseWriter, r *http.Request) {
	info, err := s.svc.Project(r.PathValue("id"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStartProject(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.StartSimulation(r.PathValue("id")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]bool{"started": true})
}

func (s *Server) handleStopProject(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.StopProject(r.PathValue("id")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"stopped": true})
}

type budgetReq struct {
	Extra int `json:"extra"`
}

func (s *Server) handleAddBudget(w http.ResponseWriter, r *http.Request) {
	var req budgetReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.svc.AddBudget(r.PathValue("id"), req.Extra); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"added": true})
}

type strategyReq struct {
	Strategy string `json:"strategy"`
}

func (s *Server) handleSwitchStrategy(w http.ResponseWriter, r *http.Request) {
	var req strategyReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.svc.SwitchStrategy(r.PathValue("id"), req.Strategy); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"switched": true})
}

type seriesResp struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = core.SeriesMeanStability
	}
	xs, ys, err := s.svc.QualitySeries(r.PathValue("id"), name)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, seriesResp{Name: name, X: xs, Y: ys})
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	rows, err := s.svc.Export(r.PathValue("id"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rows)
}

func (s *Server) handleResourceDetail(w http.ResponseWriter, r *http.Request) {
	st, err := s.svc.ResourceDetail(r.PathValue("id"), r.PathValue("rid"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) resourceAction(action func(*core.Service, string, string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := action(s.svc, r.PathValue("id"), r.PathValue("rid")); err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}
}

// --- tagger flow ----------------------------------------------------------------

type requestTaskReq struct {
	TaggerID string `json:"tagger_id"`
}

func (s *Server) handleRequestTask(w http.ResponseWriter, r *http.Request) {
	var req requestTaskReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	task, err := s.svc.RequestTask(r.PathValue("id"), req.TaggerID)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, task)
}

type submitTaskReq struct {
	Tags []string `json:"tags"`
}

func (s *Server) handleSubmitTask(w http.ResponseWriter, r *http.Request) {
	var req submitTaskReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.svc.SubmitTask(r.PathValue("id"), r.PathValue("tid"), req.Tags); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"submitted": true})
}

type judgeReq struct {
	Approved bool `json:"approved"`
}

func (s *Server) handleJudgePost(w http.ResponseWriter, r *http.Request) {
	var req judgeReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid post sequence: %w", err))
		return
	}
	if err := s.svc.JudgePost(r.PathValue("id"), r.PathValue("rid"), seq, req.Approved); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"judged": true})
}
