package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"itag/internal/api"
)

// respCache is the encoded-response cache behind the hot GET routes
// (project dashboard, resource detail, export pages): complete JSON
// bodies keyed by route parameters and stamped with the service's serve
// version (core.Service.ServeVersion — the catalog's summed table write
// clocks plus the run-state epoch). A hit is lookup → header-map
// assignment → one body write; no handler, no encode, no allocation.
//
// Correctness is the decoded record cache's protocol lifted one layer
// up, simplified by the single global version:
//
//   - a fill captures the version BEFORE computing the response, stamps
//     the entry with it, publishes, then RE-READS the version: if it
//     moved, the fill raced a write and the entry is dropped;
//   - every completed mutation advances the version strictly after its
//     state change (catalog writes via the table clocks, run-state flips
//     via the runs epoch);
//   - a hit is served only while the entry's stamp equals the current
//     version.
//
// So a served entry — and in particular a 304 revalidation — proves no
// write completed between the response's encode and its answer; the body
// can only "miss" mutations that had not yet been acknowledged to any
// writer, which an uncached read racing the same writer could equally
// have missed. Engine-internal transients (a step's in-flight allocation
// counters) ride on the posts clock their step bumps continuously.
//
// Capacity is byte-bounded with approximate LRU eviction; entries also
// count their hits, and write handlers call maybeRefresh so hot entries
// are re-encoded at write time instead of missing on their next read.
type respCache struct {
	version  func() (uint64, bool)
	maxBytes int64

	mu      sync.RWMutex
	entries map[respKey]*respEntry
	bytes   int64

	tick      atomic.Int64 // LRU clock: bumped on every hit and fill
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	refreshes atomic.Int64
}

// respKind names the cached route families.
type respKind uint8

const (
	respProject respKind = iota // GET /api/v1/projects/{id}
	respDetail                  // GET /api/v1/projects/{id}/resources/{rid}
	respExport                  // GET /api/v1/projects/{id}/export
)

// respKey identifies one cacheable response: the route family, the
// project id, and the route's remaining variability (resource id for
// details, the raw query string for paginated exports). Struct keys keep
// the hit-path map lookup allocation-free — no string concatenation.
type respKey struct {
	kind respKind
	a, b string
}

// respEntry is one published response: the 200 and 304 Raw forms share
// the precomputed header value slices, so both hit paths are copy-free.
type respEntry struct {
	seq     uint64
	size    int64
	etag    string
	raw     *api.Raw // 200: body + ETag + Cache-Control + Content-Length
	notMod  *api.Raw // 304: ETag + Cache-Control only
	hits    atomic.Int64
	lastHit atomic.Int64
}

// respHotHits is the hit count past which a write-path refresh considers
// an entry hot enough to re-encode eagerly.
const respHotHits = 4

// defaultRespCacheBytes bounds the cache when Options.RespCacheBytes is
// zero: 8 MiB holds the full hot set of the serving benchmark (1k
// resource details plus dashboards) several times over.
const defaultRespCacheBytes = 8 << 20

func newRespCache(version func() (uint64, bool), maxBytes int64) *respCache {
	if maxBytes == 0 {
		maxBytes = defaultRespCacheBytes
	}
	return &respCache{
		version:  version,
		maxBytes: maxBytes,
		entries:  make(map[respKey]*respEntry),
	}
}

func newRespEntry(seq uint64, body []byte, key respKey) *respEntry {
	etag := fmt.Sprintf("\"%d-%x\"", seq, len(body))
	etagVal := []string{etag}
	cc := api.NoCacheValue()
	e := &respEntry{
		seq:  seq,
		etag: etag,
		// Body bytes plus map-entry and header bookkeeping overhead.
		size: int64(len(body)+2*len(etag)+len(key.a)+len(key.b)) + 160,
		raw: &api.Raw{
			Body: body, Seq: seq, ETag: etagVal, CacheControl: cc,
			ContentLength: []string{strconv.Itoa(len(body))},
		},
		notMod: &api.Raw{Status: http.StatusNotModified, Seq: seq, ETag: etagVal, CacheControl: cc},
	}
	return e
}

// get looks the key up under the current version. ok=false means the
// cache has no version source (uncached catalog) and the caller must
// serve uncached; otherwise v is the version captured BEFORE any state
// read the caller makes on a miss — the stamp its fill must carry.
func (rc *respCache) get(k respKey) (e *respEntry, v uint64, ok bool) {
	v, ok = rc.version()
	if !ok {
		return nil, 0, false
	}
	rc.mu.RLock()
	e = rc.entries[k]
	rc.mu.RUnlock()
	if e != nil && e.seq == v {
		e.hits.Add(1)
		e.lastHit.Store(rc.tick.Add(1))
		rc.hits.Add(1)
		return e, v, true
	}
	rc.misses.Add(1)
	return nil, v, true
}

// put publishes a response encoded at version seq, then rechecks the
// version: published=false means a write completed during the fill and
// the entry was withdrawn (its Raw forms are still valid to answer the
// one request that built it — stamped with the version its bytes truly
// reflect — it just must not be revalidated against).
//
// Concurrent fills of one key need no ordered publication here: whichever
// entry is published last, its recheck (or the next get's stamp check)
// retires it unless its stamp still equals the global version, and two
// fills with the same stamp carry identical bytes.
func (rc *respCache) put(k respKey, seq uint64, body []byte) (e *respEntry, published bool) {
	e = newRespEntry(seq, body, k)
	if rc.maxBytes > 0 && e.size > rc.maxBytes {
		return e, false
	}
	rc.mu.Lock()
	if old := rc.entries[k]; old != nil {
		rc.bytes -= old.size
	}
	rc.entries[k] = e
	rc.bytes += e.size
	e.lastHit.Store(rc.tick.Add(1))
	rc.evictLocked(e)
	rc.mu.Unlock()
	if v, ok := rc.version(); !ok || v != seq {
		rc.withdraw(k, e)
		return e, false
	}
	return e, true
}

// withdraw removes the entry if it is still the one published under k.
func (rc *respCache) withdraw(k respKey, e *respEntry) {
	rc.mu.Lock()
	if rc.entries[k] == e {
		delete(rc.entries, k)
		rc.bytes -= e.size
	}
	rc.mu.Unlock()
}

// evictLocked trims least-recently-hit entries until the byte budget
// holds, never evicting keep (the entry just published).
func (rc *respCache) evictLocked(keep *respEntry) {
	for rc.bytes > rc.maxBytes && len(rc.entries) > 1 {
		var oldestKey respKey
		var oldest *respEntry
		for k, e := range rc.entries {
			if e == keep {
				continue
			}
			if oldest == nil || e.lastHit.Load() < oldest.lastHit.Load() {
				oldestKey, oldest = k, e
			}
		}
		if oldest == nil {
			return
		}
		delete(rc.entries, oldestKey)
		rc.bytes -= oldest.size
		rc.evictions.Add(1)
	}
}

// maybeRefresh re-encodes a hot resident entry at write time so the keys
// the workload hammers never miss: called by write handlers after their
// mutation completed. Cold or absent keys are left to fault in on the
// next read; a compute or encode failure just drops the stale entry.
func (rc *respCache) maybeRefresh(k respKey, compute func() (any, error)) {
	if rc == nil {
		return
	}
	rc.mu.RLock()
	e := rc.entries[k]
	rc.mu.RUnlock()
	if e == nil || e.hits.Load() < respHotHits {
		return
	}
	v0, ok := rc.version()
	if !ok || e.seq == v0 {
		return // no version source, or already fresh
	}
	val, err := compute()
	if err == nil {
		var body []byte
		if body, err = api.AppendJSON(nil, val); err == nil {
			if ne, published := rc.put(k, v0, body); published {
				ne.hits.Store(e.hits.Load()) // carry hotness across the refresh
				rc.refreshes.Add(1)
				return
			}
		}
	}
	rc.withdraw(k, e)
}

// stats snapshots the cache counters.
func (rc *respCache) stats() RespCacheStats {
	if rc == nil {
		return RespCacheStats{}
	}
	rc.mu.RLock()
	entries, bytes := int64(len(rc.entries)), rc.bytes
	rc.mu.RUnlock()
	return RespCacheStats{
		Hits:      rc.hits.Load(),
		Misses:    rc.misses.Load(),
		Evictions: rc.evictions.Load(),
		Refreshes: rc.refreshes.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}

// RespCacheStats reports the encoded-response cache counters (all zero
// when the cache is disabled).
type RespCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Refreshes int64 `json:"refreshes"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// respFamilies renders the cache counters as Prometheus families.
func (rc *respCache) families() []api.Family {
	st := rc.stats()
	one := func(name, help, typ string, v int64) api.Family {
		return api.Family{Name: name, Help: help, Type: typ, Samples: []api.Sample{{Value: float64(v)}}}
	}
	return []api.Family{
		one("itag_respcache_hits_total", "Encoded-response cache hits.", api.TypeCounter, st.Hits),
		one("itag_respcache_misses_total", "Encoded-response cache misses (including version-expired entries).", api.TypeCounter, st.Misses),
		one("itag_respcache_evictions_total", "Entries evicted to hold the byte budget.", api.TypeCounter, st.Evictions),
		one("itag_respcache_refreshes_total", "Hot entries re-encoded at write time.", api.TypeCounter, st.Refreshes),
		one("itag_respcache_entries", "Resident encoded responses.", api.TypeGauge, st.Entries),
		one("itag_respcache_bytes", "Bytes held by resident encoded responses.", api.TypeGauge, st.Bytes),
	}
}

// --- cached route handlers ------------------------------------------------------

// cachedJSON adapts a compute function into a cached GET handler: serve
// the published entry (or its 304 form under a matching If-None-Match),
// fill on miss, and fall back to a plain pooled encode — byte-identical,
// just without ETags — when the service has no version source.
func (s *Server) cachedJSON(kind respKind, keyB func(*http.Request) string, compute func(*http.Request) (any, error)) http.HandlerFunc {
	return api.Handle(s.kit, http.StatusOK, func(r *http.Request, _ api.None) (*api.Raw, error) {
		k := respKey{kind: kind, a: r.PathValue("id"), b: keyB(r)}
		if s.resp != nil {
			if e, v, ok := s.resp.get(k); ok {
				if e == nil {
					val, err := compute(r)
					if err != nil {
						return nil, err
					}
					body, err := api.AppendJSON(nil, val)
					if err != nil {
						return nil, err
					}
					var published bool
					if e, published = s.resp.put(k, v, body); !published {
						// The fill raced a write: answer with the bytes this
						// request computed, but never revalidate against them.
						return e.raw, nil
					}
				}
				if api.ETagMatch(r, e.etag) {
					return e.notMod, nil
				}
				return e.raw, nil
			}
		}
		val, err := compute(r)
		if err != nil {
			return nil, err
		}
		body, err := api.AppendJSON(nil, val)
		if err != nil {
			return nil, err
		}
		return &api.Raw{Body: body}, nil
	})
}

// emptyKeyB / queryKeyB are the per-route key variability extractors.
func emptyKeyB(*http.Request) string   { return "" }
func queryKeyB(r *http.Request) string { return r.URL.RawQuery }
func ridKeyB(r *http.Request) string   { return r.PathValue("rid") }

// refreshProject pre-encodes the project dashboard entry after a write
// touching the project, if it is resident and hot.
func (s *Server) refreshProject(projectID string) {
	if s.resp == nil {
		return
	}
	s.resp.maybeRefresh(respKey{kind: respProject, a: projectID}, func() (any, error) {
		return s.svc.Project(context.Background(), projectID)
	})
}

// refreshResource pre-encodes a resource's detail entry (and the project
// dashboard) after a write touching the resource.
func (s *Server) refreshResource(projectID, resourceID string) {
	if s.resp == nil {
		return
	}
	s.resp.maybeRefresh(respKey{kind: respDetail, a: projectID, b: resourceID}, func() (any, error) {
		return s.svc.ResourceDetail(context.Background(), projectID, resourceID)
	})
	s.refreshProject(projectID)
}
