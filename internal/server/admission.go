package server

import (
	"math"
	"net/http"
	"strconv"
	"time"

	"itag/internal/api"
	"itag/internal/capacity"
	"itag/internal/errs"
)

// AdmissionOptions enables queueing-model admission control on the
// expensive task routes (request/submit/batch). Cheap control-plane
// routes — health, metrics, SSE — are never gated.
type AdmissionOptions struct {
	// SLO is the p99 latency target the admission knee is solved
	// against (default 500ms).
	SLO time.Duration
	// MaxConcurrency caps admitted concurrency when the model has no
	// saturation evidence (default 256).
	MaxConcurrency int
}

// admittedRoutes are the metric labels of the gated routes; the governor
// fits one latency model per label and the tightest knee steers the
// shared limiter.
var admittedRoutes = []string{
	"POST /api/v1/projects/{id}/tasks",
	"POST /api/v1/projects/{id}/tasks:batch",
	"POST /api/v1/projects/{id}/tasks/{tid}/submit",
	"POST /api/projects/{id}/tasks",
	"POST /api/projects/{id}/tasks/{tid}/submit",
}

// errSaturated is the shed response: 429 resource_exhausted through the
// taxonomy, so the error matrix and the envelope stay consistent.
var errSaturated error = errs.New(errs.ComponentAPI, errs.CategoryRateLimited,
	"server saturated: admission ceiling reached, retry after the advertised delay")

// initAdmission builds the governor/limiter pair for the configured SLO.
func (s *Server) initAdmission(opts *AdmissionOptions) {
	if opts == nil {
		return
	}
	slo := opts.SLO
	if slo <= 0 {
		slo = 500 * time.Millisecond
	}
	maxc := opts.MaxConcurrency
	if maxc <= 0 {
		maxc = 256
	}
	s.admission = capacity.NewGovernor(capacity.GovernorConfig{
		Routes:         admittedRoutes,
		SLO:            slo,
		MaxConcurrency: maxc,
	}, s.metrics, capacity.NewLimiter(maxc))
}

// Admission exposes the governor (nil when admission control is off) —
// used by the metrics exposition and by tests.
func (s *Server) Admission() *capacity.Governor { return s.admission }

// limited wraps a handler behind the saturation limiter. It sits OUTSIDE
// the metrics Track layer on purpose: shed responses return in
// microseconds and would drag the route's p99 down exactly when the
// governor needs to see the overload; keeping them out of the histogram
// (they still land in the error matrix via WriteError) keeps the model's
// input honest. The refit check rides on request completion, so the
// control loop needs no background goroutine.
func (s *Server) limited(h http.Handler) http.Handler {
	if s.admission == nil {
		return h
	}
	lim := s.admission.Limiter()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, ok := lim.TryAcquire()
		if !ok {
			secs := int(math.Ceil(lim.RetryAfter().Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			s.kit.WriteError(w, r, errSaturated)
			return
		}
		defer func() {
			release()
			s.admission.Maybe(time.Now())
		}()
		h.ServeHTTP(w, r)
	})
}

// routeLimited mounts a v1 route with the admission gate in front of the
// tracked handler.
func (s *Server) routeLimited(pattern string, h http.Handler) {
	if s.routeTimeout > 0 {
		h = api.Timeout(s.routeTimeout)(h)
	}
	s.mux.Handle(pattern, s.limited(s.metrics.Track(pattern, h)))
}

// aliasLimited is routeLimited for legacy alias routes. WithLegacy sits
// outermost so a shed response uses the legacy string error body just
// like every other error on these routes.
func (s *Server) aliasLimited(pattern string, h http.Handler) {
	if s.routeTimeout > 0 {
		h = api.Timeout(s.routeTimeout)(h)
	}
	s.mux.Handle(pattern, api.WithLegacy(s.limited(s.metrics.Track(pattern, h))))
}

// capacityFamilies renders the admission limiter, fitted models and the
// service's autoscaling pool as metric families.
func (s *Server) capacityFamilies() []api.Family {
	one := func(name, help, typ string, v float64) api.Family {
		return api.Family{Name: name, Help: help, Type: typ, Samples: []api.Sample{{Value: v}}}
	}
	var fams []api.Family
	if s.admission != nil {
		lim := s.admission.Limiter()
		fams = append(fams,
			one("itag_admission_limit", "Current admission ceiling (model knee).", api.TypeGauge, float64(lim.Limit())),
			one("itag_admission_inflight", "Admitted requests currently in flight.", api.TypeGauge, float64(lim.Inflight())),
			one("itag_admission_admitted_total", "Requests admitted past the limiter.", api.TypeCounter, float64(lim.Admitted())),
			one("itag_admission_shed_total", "Requests shed with 429 by the limiter.", api.TypeCounter, float64(lim.Shed())),
		)
		models := s.admission.Models()
		alphaFam := api.Family{Name: "itag_admission_model_alpha_seconds", Help: "Fitted base service time per route.", Type: api.TypeGauge}
		betaFam := api.Family{Name: "itag_admission_model_beta_seconds", Help: "Fitted marginal latency per concurrent request.", Type: api.TypeGauge}
		for _, route := range admittedRoutes {
			m, ok := models[route]
			if !ok {
				continue
			}
			lbl := []api.Label{{Name: "route", Value: route}}
			alphaFam.Samples = append(alphaFam.Samples, api.Sample{Labels: lbl, Value: m.Alpha})
			betaFam.Samples = append(betaFam.Samples, api.Sample{Labels: lbl, Value: m.Beta})
		}
		if len(alphaFam.Samples) > 0 {
			fams = append(fams, alphaFam, betaFam)
		}
	}
	if st, ok := s.svc.PoolStats(); ok {
		fams = append(fams,
			one("itag_pool_workers", "Live autoscaling pool workers.", api.TypeGauge, float64(st.Workers)),
			one("itag_pool_busy", "Pool workers currently running a step.", api.TypeGauge, float64(st.Busy)),
			one("itag_pool_queue_depth", "Steps waiting in the pool queue.", api.TypeGauge, float64(st.QueueDepth)),
			one("itag_pool_worker_limit", "Dynamic worker ceiling.", api.TypeGauge, float64(st.Limit)),
			one("itag_pool_completed_total", "Steps completed by the pool.", api.TypeCounter, float64(st.Completed)),
			one("itag_pool_scale_ups_total", "Workers spawned by the autoscaler.", api.TypeCounter, float64(st.ScaleUps)),
			one("itag_pool_scale_downs_total", "Workers retired by the idle reaper.", api.TypeCounter, float64(st.ScaleDowns)),
		)
	}
	return fams
}
