package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"itag/internal/api"
)

// TestErrorMapping table-tests that every service sentinel produces the
// documented HTTP status and machine-readable code on the v1 path, and
// the same status with the flat string body on the legacy alias path
// (docs/API.md error-code table).
func TestErrorMapping(t *testing.T) {
	c := newV1Client(t)
	prov := c.register("providers", "alice")
	tagr := c.register("taggers", "bob")
	// Budget large enough that the run is still live for the whole table;
	// the cleanup stop drains it.
	running := c.createSimProject(prov, 50_000_000)
	c.do("POST", "/api/projects/"+running+"/start", nil, http.StatusAccepted, nil)
	t.Cleanup(func() { c.do("POST", "/api/projects/"+running+"/stop", nil, http.StatusOK, nil) })

	cases := []struct {
		name       string
		method     string
		legacyPath string // "" = v1-only route
		v1Path     string
		body       any
		wantStatus int
		wantCode   string
	}{
		{
			name:   "store.ErrNotFound on user lookup",
			method: "GET", legacyPath: "/api/users/ghost", v1Path: "/api/v1/users/ghost",
			wantStatus: http.StatusNotFound, wantCode: api.CodeNotFound,
		},
		{
			name:   "store.ErrNotFound on project lookup",
			method: "GET", legacyPath: "/api/projects/ghost", v1Path: "/api/v1/projects/ghost",
			wantStatus: http.StatusNotFound, wantCode: api.CodeNotFound,
		},
		{
			name:       "store.ErrNotFound judging a missing post",
			method:     "POST",
			legacyPath: "/api/projects/" + running + "/posts/no-such-resource/1/judge",
			v1Path:     "/api/v1/projects/" + running + "/posts/no-such-resource/1/judge",
			body:       judgeReq{Approved: true},
			wantStatus: http.StatusNotFound, wantCode: api.CodeNotFound,
		},
		{
			name:       "core.ErrProjectRunning on double start",
			method:     "POST",
			legacyPath: "/api/projects/" + running + "/start",
			v1Path:     "/api/v1/projects/" + running + "/start",
			wantStatus: http.StatusConflict, wantCode: api.CodeProjectRunning,
		},
		{
			name:       "core.ErrInvalidRole rating a tagger",
			method:     "POST",
			legacyPath: "/api/providers/" + tagr + "/rate",
			v1Path:     "/api/v1/providers/" + tagr + "/rate",
			body:       rateReq{Positive: true},
			wantStatus: http.StatusBadRequest, wantCode: api.CodeInvalidRole,
		},
		{
			name:   "validation error on create",
			method: "POST", legacyPath: "/api/projects", v1Path: "/api/v1/projects",
			body:       CreateProjectReq{},
			wantStatus: http.StatusBadRequest, wantCode: api.CodeInvalidArgument,
		},
		{
			name:   "malformed body",
			method: "POST", legacyPath: "/api/projects", v1Path: "/api/v1/projects",
			body:       map[string]any{"unknown_field": 1},
			wantStatus: http.StatusBadRequest, wantCode: api.CodeInvalidRequest,
		},
		{
			name:       "unknown series",
			method:     "GET",
			legacyPath: "/api/projects/" + running + "/series?name=nope",
			v1Path:     "/api/v1/projects/" + running + "/series?name=nope",
			wantStatus: http.StatusBadRequest, wantCode: api.CodeInvalidArgument,
		},
		{
			name:       "bad pagination cursor",
			method:     "GET",
			v1Path:     "/api/v1/projects?cursor=%21%21not-base64%21%21",
			wantStatus: http.StatusBadRequest, wantCode: api.CodeInvalidArgument,
		},
		{
			name:       "bad pagination limit",
			method:     "GET",
			v1Path:     "/api/v1/projects?limit=minus-one",
			wantStatus: http.StatusBadRequest, wantCode: api.CodeInvalidArgument,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// v1: structured envelope with code + request id.
			status, body := rawDo(t, c, tc.method, tc.v1Path, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("v1 status = %d, want %d (body %s)", status, tc.wantStatus, body)
			}
			var env struct {
				Error struct {
					Code      string `json:"code"`
					Message   string `json:"message"`
					RequestID string `json:"request_id"`
				} `json:"error"`
			}
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("v1 envelope: %v (%s)", err, body)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("v1 code = %q, want %q", env.Error.Code, tc.wantCode)
			}
			if env.Error.Message == "" || env.Error.RequestID == "" {
				t.Errorf("v1 envelope incomplete: %+v", env.Error)
			}

			// Legacy alias: same status, flat string body.
			if tc.legacyPath == "" {
				return
			}
			status, body = rawDo(t, c, tc.method, tc.legacyPath, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("legacy status = %d, want %d (body %s)", status, tc.wantStatus, body)
			}
			var flat struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &flat); err != nil || flat.Error == "" {
				t.Errorf("legacy body = %s (%v)", body, err)
			}
		})
	}
}

// rawDo issues a request and returns the status and raw body (unlike
// client.do it does not assert).
func rawDo(t *testing.T, c *client, method, path string, body any) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, c.srv.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	return resp.StatusCode, out.Bytes()
}
