package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"itag/internal/api"
	"itag/internal/core"
	"itag/internal/errs"
	"itag/internal/store"
)

// --- taxonomy coverage ----------------------------------------------------------

// TestTaxonomyCoverage walks the full error-code contract (api.CodeTable)
// and proves every code is unique, carries the documented status, and —
// for taxonomy-derived codes — is exactly what mapErr produces for an
// error of that category. This is the test that keeps the taxonomy, the
// transport mapping and the docs table from drifting apart.
func TestTaxonomyCoverage(t *testing.T) {
	seen := make(map[string]bool)
	for _, spec := range api.CodeTable() {
		if seen[spec.Code] {
			t.Errorf("duplicate code %q in CodeTable", spec.Code)
		}
		seen[spec.Code] = true
	}

	// Transport-level codes raised outside mapErr: by the kit itself, or —
	// for not_owner — by the cluster router before a handler is reached.
	transport := map[string]bool{
		api.CodeInvalidRequest: true,
		api.CodeBatchTooLarge:  true,
		api.CodeNotOwner:       true,
		api.CodeUnavailable:    true,
		api.CodeTimeout:        true,
		api.CodeCanceled:       true,
		api.CodeInternal:       true,
	}
	for _, spec := range api.CodeTable() {
		if transport[spec.Code] {
			continue
		}
		err := errs.New(errs.ComponentCore, spec.Category, "probe")
		if spec.Code != spec.Category.DefaultCode() {
			err = err.WithCode(spec.Code) // sentinel refinement (project_running, invalid_role)
		}
		ae := mapErr(err)
		if ae.Status != spec.Status || ae.Code != spec.Code {
			t.Errorf("mapErr(category %s, code %s) = %d/%s, want %d/%s",
				spec.Category, spec.Code, ae.Status, ae.Code, spec.Status, spec.Code)
		}
	}

	// Context sentinels keep their dedicated transport codes even when the
	// interrupted operation carried a taxonomy.
	if ae := mapErr(context.DeadlineExceeded); ae.Status != http.StatusGatewayTimeout || ae.Code != api.CodeTimeout {
		t.Errorf("deadline = %d/%s", ae.Status, ae.Code)
	}
	if ae := mapErr(context.Canceled); ae.Status != statusClientClosedRequest || ae.Code != api.CodeCanceled {
		t.Errorf("canceled = %d/%s", ae.Status, ae.Code)
	}
	wrapped := fmt.Errorf("op: %w", context.DeadlineExceeded)
	if ae := mapErr(wrapped); ae.Code != api.CodeTimeout {
		t.Errorf("wrapped deadline = %s", ae.Code)
	}
}

// TestTaxonomyEnvelopes drives one error of every taxonomy category
// through the real write path and asserts both envelope eras: the v1
// structured object and the legacy flat string, with the status derived
// from the category.
func TestTaxonomyEnvelopes(t *testing.T) {
	kit := &api.Kit{MapError: mapErr, Metrics: api.NewMetrics()}
	for _, cat := range errs.Categories() {
		err := errs.New(errs.ComponentQuality, cat, "probe failure")
		wantStatus := cat.HTTPStatus()
		wantCode := cat.DefaultCode()

		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			kit.WriteError(w, r, err)
		})

		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/probe", nil))
		if rec.Code != wantStatus {
			t.Errorf("%s: v1 status = %d, want %d", cat, rec.Code, wantStatus)
		}
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if jerr := json.Unmarshal(rec.Body.Bytes(), &env); jerr != nil {
			t.Fatalf("%s: v1 body %s: %v", cat, rec.Body.Bytes(), jerr)
		}
		if env.Error.Code != wantCode || env.Error.Message != "quality: probe failure" {
			t.Errorf("%s: v1 envelope = %+v, want code %s", cat, env.Error, wantCode)
		}

		rec = httptest.NewRecorder()
		api.WithLegacy(h).ServeHTTP(rec, httptest.NewRequest("GET", "/probe", nil))
		if rec.Code != wantStatus {
			t.Errorf("%s: legacy status = %d, want %d", cat, rec.Code, wantStatus)
		}
		var flat struct {
			Error string `json:"error"`
		}
		if jerr := json.Unmarshal(rec.Body.Bytes(), &flat); jerr != nil || flat.Error != "quality: probe failure" {
			t.Errorf("%s: legacy body = %s", cat, rec.Body.Bytes())
		}
	}
}

// --- fault injection ------------------------------------------------------------

// TestFaultInjectionIOInMetrics arms a store failpoint mid-request and
// follows the failure end to end: the write returns 500/io_failure on the
// wire, and the scrape shows the error attributed to component=store,
// category=io.
func TestFaultInjectionIOInMetrics(t *testing.T) {
	db, err := store.Open(filepath.Join(t.TempDir(), "db"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := core.NewService(store.NewCatalog(db), 99)
	s := New(svc, nil)
	srv := httptest.NewServer(s)
	prom := httptest.NewServer(s.PromHandler())
	t.Cleanup(func() {
		srv.Close()
		prom.Close()
		svc.Close()
		db.Close()
	})

	// Healthy write first: the store must be live before the fault.
	status, _ := httpJSON(t, srv.URL+"/api/v1/providers", registerReq{Name: "ok"})
	if status != http.StatusCreated {
		t.Fatalf("healthy write status = %d", status)
	}

	db.SetFailpoint(func(p store.Failpoint) bool { return p == store.FailAppendMid })
	status, body := httpJSON(t, srv.URL+"/api/v1/providers", registerReq{Name: "boom"})
	if status != http.StatusInternalServerError {
		t.Fatalf("faulted write status = %d (body %s)", status, body)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != api.CodeIOFailure {
		t.Fatalf("faulted write code = %q (body %s)", env.Error.Code, body)
	}

	fams := scrape(t, prom.URL)
	if got := errorCellValue(fams, "store", "io"); got < 1 {
		t.Errorf("itag_http_errors_total{component=store,category=io} = %g, want >= 1", got)
	}
	// The scrape itself must stay conformant with store families included.
	if err := api.CheckHistograms(fams); err != nil {
		t.Errorf("scrape histograms: %v", err)
	}
	foundStore := false
	for _, f := range fams {
		if f.Name == "itag_store_commits_total" && len(f.Samples) == 1 && f.Samples[0].Value >= 1 {
			foundStore = true
		}
	}
	if !foundStore {
		t.Error("store families missing from scrape")
	}
}

// TestCorruptionCategoryOnReopen corrupts a committed WAL record on disk
// and asserts the reopen fails with the corruption category — the code
// path that makes integrity failures distinguishable from plain IO errors
// in both logs and metrics.
func TestCorruptionCategoryOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := store.NewCatalog(db)
	for i := 0; i < 3; i++ {
		if err := cat.PutUser(store.UserRec{ID: fmt.Sprintf("u%d", i), Role: store.RoleTagger}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(path + ".seg-*")
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments found: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the first record's JSON body (offset 12 is past
	// the 8-hex-digit CRC and the separating space), keeping the newline:
	// a complete-but-mismatching record, not a torn tail.
	data[12] ^= 0x01
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = store.Open(path, store.Options{})
	if err == nil {
		t.Fatal("reopen of corrupted WAL succeeded")
	}
	if got := errs.CategoryOf(err); got != errs.CategoryCorruption {
		t.Errorf("reopen error category = %q, want corruption (%v)", got, err)
	}
	if errs.ComponentOf(err) != errs.ComponentStore {
		t.Errorf("reopen error component = %q", errs.ComponentOf(err))
	}
}

// --- SSE drop accounting --------------------------------------------------------

// TestSSEDroppedSurfacesInMetrics runs a simulation against a subscriber
// with a 1-slot buffer that never reads until the run finishes: almost
// every notification must be counted as dropped in the metrics registry
// and surface on the scrape.
func TestSSEDroppedSurfacesInMetrics(t *testing.T) {
	svc := core.NewService(store.NewCatalog(store.OpenMemory()), 99)
	s := NewWith(svc, Options{SSEBuffer: 1})
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	c := &client{t: t, srv: srv}

	prov := c.register("providers", "p")
	proj := c.createSimProject(prov, 60)

	resp, err := http.Get(srv.URL + "/api/v1/projects/" + proj + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Run the whole simulation while the subscriber sits unread; its 1-slot
	// buffer overflows on nearly every notification.
	c.do("POST", "/api/v1/projects/"+proj+"/start", nil, http.StatusAccepted, nil)
	c.waitDone(proj, 30*time.Second)

	// Drain the stream to completion; the handler flushes the final drop
	// delta when the subscription closes.
	sawDropped := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: dropped") {
			sawDropped = true
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().SSEDropped() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Metrics().SSEDropped(); got == 0 {
		t.Errorf("SSEDropped = 0 after a starved 1-slot subscriber (saw dropped event: %v)", sawDropped)
	}
	fams := s.Metrics().Families()
	if got := gaugeValue(fams, "itag_sse_dropped_events_total"); got < 1 {
		t.Errorf("itag_sse_dropped_events_total = %g, want >= 1", got)
	}
}

// --- scrape race ----------------------------------------------------------------

// TestMetricsScrapeRace hammers the Prometheus endpoint and the JSON
// metrics endpoint while mixed v1 traffic runs — run under -race this
// proves scrapes never tear against the lock-free histogram writers.
func TestMetricsScrapeRace(t *testing.T) {
	svc := core.NewService(store.NewCatalog(store.OpenMemory()), 99)
	s := New(svc, nil)
	srv := httptest.NewServer(s)
	prom := httptest.NewServer(s.PromHandler())
	t.Cleanup(func() {
		srv.Close()
		prom.Close()
		svc.Close()
	})
	c := &client{t: t, srv: srv}
	prov := c.register("providers", "p")

	const workers, iters = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch w % 4 {
				case 0: // scrape exposition and keep it conformant
					fams := scrape(t, prom.URL)
					if err := api.CheckHistograms(fams); err != nil {
						t.Errorf("scrape %d/%d: %v", w, i, err)
						return
					}
				case 1: // JSON metrics
					resp, err := http.Get(srv.URL + "/api/v1/metrics")
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				case 2: // writes
					httpJSON(t, srv.URL+"/api/v1/taggers", registerReq{Name: fmt.Sprintf("t%d-%d", w, i)})
				default: // reads, including a 404 to exercise error counters
					resp, err := http.Get(srv.URL + "/api/v1/users/ghost-" + fmt.Sprint(i))
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					resp, err = http.Get(srv.URL + "/api/v1/users/" + prov)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()

	// A final scrape must account every 404 the hammer generated.
	fams := scrape(t, prom.URL)
	if got := errorCellValue(fams, "store", "not_found"); got < 1 {
		t.Errorf("not_found errors uncounted after hammer (got %g)", got)
	}
}

// --- docs drift -----------------------------------------------------------------

// TestAPIDocsErrorTable pins docs/API.md's error-code table to
// api.CodeTable: every code appears in the docs with its documented
// status, and the docs list no codes the server cannot emit.
func TestAPIDocsErrorTable(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	documented := make(map[string]int)
	for _, line := range strings.Split(doc, "\n") {
		// Table rows look like: | `code` | 404 | description |
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 4 {
			continue
		}
		code := strings.Trim(strings.TrimSpace(cells[1]), "`")
		var status int
		if _, err := fmt.Sscanf(strings.TrimSpace(cells[2]), "%d", &status); err != nil {
			continue
		}
		documented[code] = status
	}

	want := api.CodeTable()
	for _, spec := range want {
		got, ok := documented[spec.Code]
		if !ok {
			t.Errorf("code %q missing from docs/API.md error table", spec.Code)
			continue
		}
		if got != spec.Status {
			t.Errorf("docs list %q as %d, server emits %d", spec.Code, got, spec.Status)
		}
	}
	if len(documented) != len(want) {
		t.Errorf("docs table has %d codes, CodeTable has %d", len(documented), len(want))
	}
}

// --- helpers --------------------------------------------------------------------

func httpJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	return resp.StatusCode, out.Bytes()
}

// scrape fetches and strictly parses a Prometheus exposition.
func scrape(t *testing.T, url string) []api.Family {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape content type = %q", ct)
	}
	fams, err := api.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("scrape grammar: %v", err)
	}
	return fams
}

func errorCellValue(fams []api.Family, component, category string) float64 {
	for _, f := range fams {
		if f.Name != "itag_http_errors_total" {
			continue
		}
		for _, s := range f.Samples {
			comp, cat := "", ""
			for _, l := range s.Labels {
				switch l.Name {
				case "component":
					comp = l.Value
				case "category":
					cat = l.Value
				}
			}
			if comp == component && cat == category {
				return s.Value
			}
		}
	}
	return 0
}

func gaugeValue(fams []api.Family, name string) float64 {
	for _, f := range fams {
		if f.Name == name && len(f.Samples) > 0 {
			return f.Samples[0].Value
		}
	}
	return 0
}
