package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"itag/internal/core"
	"itag/internal/dataset"
	"itag/internal/store"
)

// servingWorld is one service shared by a cached server (default options)
// and a plain one (cache disabled): the parity suite compares their bytes
// route by route.
type servingWorld struct {
	svc     *core.Service
	cached  *Server
	plain   *Server
	project string
	tagger  string
	prov    string
}

func newServingWorld(t *testing.T) *servingWorld {
	t.Helper()
	svc := core.NewService(store.NewCatalog(store.OpenMemory()), 7)
	t.Cleanup(svc.Close)
	w := &servingWorld{
		svc:    svc,
		cached: NewWith(svc, Options{}),
		plain:  NewWith(svc, Options{RespCacheBytes: -1}),
	}
	ctx := t.Context()
	var err error
	if w.prov, err = svc.RegisterProvider(ctx, "prov"); err != nil {
		t.Fatal(err)
	}
	if w.tagger, err = svc.RegisterTagger(ctx, "tagr"); err != nil {
		t.Fatal(err)
	}
	spec := core.ProjectSpec{
		ProviderID: w.prov, Name: "parity", Budget: 200, PayPerTask: 0.05,
		Strategy: "random",
	}
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("r%d", i)
		spec.Resources = append(spec.Resources, dataset.Resource{ID: id, Name: id, Popularity: 1})
	}
	if w.project, err = svc.CreateProject(ctx, spec); err != nil {
		t.Fatal(err)
	}
	// A few completed tasks so details, exports and user stats are
	// non-trivial.
	for i := 0; i < 8; i++ {
		task, err := svc.RequestTask(ctx, w.project, w.tagger)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.SubmitTask(ctx, w.project, task.ID, []string{"go", fmt.Sprintf("t%d", i%3)}); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func (w *servingWorld) get(t *testing.T, srv *Server, path string, hdr map[string]string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

// TestServingParity pins the redesigned encode path byte-for-byte: every
// v1 GET route must produce identical bodies through the cache miss path,
// the cache hit path, and the plain pooled pipeline — and for the
// representative routes, identical to the seed per-request encoder
// (json.Encoder straight over the value). /api/v1/metrics is excluded
// from byte comparison: its body embeds live counters that change with
// every request observed.
func TestServingParity(t *testing.T) {
	w := newServingWorld(t)

	paths := []string{
		"/api/v1/healthz",
		"/api/v1/users/" + w.tagger,
		"/api/v1/users/" + w.prov,
		"/api/v1/projects",
		"/api/v1/projects?limit=1",
		"/api/v1/projects/" + w.project,
		"/api/v1/projects/" + w.project + "/series",
		"/api/v1/projects/" + w.project + "/export",
		"/api/v1/projects/" + w.project + "/export?limit=2",
		"/api/v1/projects/" + w.project + "/resources/r0",
		"/api/v1/projects/" + w.project + "/resources/r3",
	}
	// Walk the export and project-list cursors so pagination continuations
	// are compared too.
	for _, base := range []string{"/api/v1/projects/" + w.project + "/export", "/api/v1/projects"} {
		cursor, pages := "", 0
		for {
			path := base + "?limit=2"
			if cursor != "" {
				path += "&cursor=" + cursor
			}
			paths = append(paths, path)
			rec, _ := w.get(t, w.plain, path, nil)
			if rec.Code != http.StatusOK {
				t.Fatalf("GET %s = %d", path, rec.Code)
			}
			var page struct {
				NextCursor string `json:"next_cursor"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
				t.Fatal(err)
			}
			if cursor = page.NextCursor; cursor == "" {
				break
			}
			if pages++; pages > 50 {
				t.Fatal("cursor never terminated")
			}
		}
	}

	for _, path := range paths {
		recPlain, plainBody := w.get(t, w.plain, path, nil)
		recMiss, missBody := w.get(t, w.cached, path, nil)
		recHit, hitBody := w.get(t, w.cached, path, nil)
		if recPlain.Code != http.StatusOK || recMiss.Code != http.StatusOK || recHit.Code != http.StatusOK {
			t.Fatalf("GET %s: plain=%d miss=%d hit=%d", path, recPlain.Code, recMiss.Code, recHit.Code)
		}
		if !bytes.Equal(plainBody, missBody) || !bytes.Equal(plainBody, hitBody) {
			t.Errorf("GET %s: bodies diverge\nplain %q\nmiss  %q\nhit   %q", path, plainBody, missBody, hitBody)
		}
		for _, rec := range []*httptest.ResponseRecorder{recPlain, recMiss, recHit} {
			if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(len(plainBody)) {
				t.Errorf("GET %s: Content-Length %q, body %d bytes", path, cl, len(plainBody))
			}
		}
	}
	if st := w.cached.RespCacheStats(); st.Hits == 0 {
		t.Fatalf("parity walk never hit the response cache: %+v", st)
	}

	// Representative routes against the seed encoder itself.
	ctx := t.Context()
	seed := func(v any) []byte {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	info, err := w.svc.Project(ctx, w.project)
	if err != nil {
		t.Fatal(err)
	}
	_, body := w.get(t, w.cached, "/api/v1/projects/"+w.project, nil)
	if !bytes.Equal(body, seed(info)) {
		t.Errorf("project body != seed encoder output")
	}
	det, err := w.svc.ResourceDetail(ctx, w.project, "r0")
	if err != nil {
		t.Fatal(err)
	}
	_, body = w.get(t, w.cached, "/api/v1/projects/"+w.project+"/resources/r0", nil)
	if !bytes.Equal(body, seed(det)) {
		t.Errorf("resource detail body != seed encoder output")
	}
	items, next, err := w.svc.ExportPage(ctx, w.project, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	_, body = w.get(t, w.cached, "/api/v1/projects/"+w.project+"/export?limit=2", nil)
	if !bytes.Equal(body, seed(exportPage{Items: items, NextCursor: next})) {
		t.Errorf("export body != seed encoder output")
	}
}

// TestConditionalGET pins the ETag / If-None-Match semantics: a 304 only
// ever revalidates the current version — any completed write in between
// makes the old validator miss and the full fresh body come back.
func TestConditionalGET(t *testing.T) {
	w := newServingWorld(t)
	path := "/api/v1/projects/" + w.project + "/resources/r1"

	rec, body := w.get(t, w.cached, path, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET = %d", rec.Code)
	}
	etag := rec.Header().Get("Etag")
	if etag == "" || rec.Header().Get("Cache-Control") != "no-cache" {
		t.Fatalf("validator headers missing: Etag=%q Cache-Control=%q", etag, rec.Header().Get("Cache-Control"))
	}

	// Matching validator → 304, no body, no framing, validator echoed.
	rec, b := w.get(t, w.cached, path, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("revalidation = %d %q", rec.Code, b)
	}
	if rec.Header().Get("Etag") != etag || rec.Header().Get("Content-Length") != "" {
		t.Fatalf("304 headers: %v", rec.Header())
	}
	// Weak-form validator matches too.
	rec, _ = w.get(t, w.cached, path, map[string]string{"If-None-Match": "W/" + etag})
	if rec.Code != http.StatusNotModified {
		t.Fatalf("weak revalidation = %d", rec.Code)
	}

	// Any completed catalog write moves the serve version — even one that
	// doesn't touch this resource's bytes. The old validator must now
	// fetch a full response with a fresh ETag, never a stale 304.
	if err := w.svc.StopResource(t.Context(), w.project, "r5"); err != nil {
		t.Fatal(err)
	}
	rec, b = w.get(t, w.cached, path, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusOK || len(b) == 0 {
		t.Fatalf("post-write revalidation = %d %q", rec.Code, b)
	}
	etag2 := rec.Header().Get("Etag")
	if etag2 == "" || etag2 == etag {
		t.Fatalf("ETag did not move across a write: %q → %q", etag, etag2)
	}
	if !bytes.Equal(b, body) {
		// Same resource bytes are fine (the write touched another table);
		// but if they differ they must decode — sanity only.
		var det core.ResourceStatus
		if err := json.Unmarshal(b, &det); err != nil {
			t.Fatal(err)
		}
	}
	rec, _ = w.get(t, w.cached, path, map[string]string{"If-None-Match": etag2})
	if rec.Code != http.StatusNotModified {
		t.Fatalf("fresh validator = %d, want 304", rec.Code)
	}
}

// TestLegacyDeprecationHeaders pins the alias surface: RFC 9745
// Deprecation plus a successor-version Link on every legacy route, with
// bodies and error shapes byte-for-byte unchanged (and no ETags — the
// conditional-GET surface is v1-only).
func TestLegacyDeprecationHeaders(t *testing.T) {
	w := newServingWorld(t)
	legacyPath := "/api/projects/" + w.project
	rec, legacyBody := w.get(t, w.cached, legacyPath, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("legacy GET = %d", rec.Code)
	}
	if got := rec.Header().Get("Deprecation"); got != "@1786147200" {
		t.Errorf("Deprecation = %q", got)
	}
	wantLink := "</api/v1/projects/" + w.project + `>; rel="successor-version"`
	if got := rec.Header().Get("Link"); got != wantLink {
		t.Errorf("Link = %q, want %q", got, wantLink)
	}
	if rec.Header().Get("Etag") != "" {
		t.Errorf("legacy route grew an ETag: %q", rec.Header().Get("Etag"))
	}
	// Body identical to the v1 (cached) route's.
	_, v1Body := w.get(t, w.cached, "/api/v1/projects/"+w.project, nil)
	if !bytes.Equal(legacyBody, v1Body) {
		t.Errorf("legacy body diverged from v1:\nlegacy %q\nv1     %q", legacyBody, v1Body)
	}

	// Legacy error shape unchanged: flat {"error": "..."} string envelope,
	// deprecation headers still present.
	rec, body := w.get(t, w.cached, "/api/projects/ghost", nil)
	if rec.Code != http.StatusNotFound || rec.Header().Get("Deprecation") == "" {
		t.Fatalf("legacy error = %d headers=%v", rec.Code, rec.Header())
	}
	var flat struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &flat); err != nil || flat.Error == "" {
		t.Fatalf("legacy error body = %q (%v)", body, err)
	}

	// POST aliases carry the headers too.
	req := httptest.NewRequest("POST", "/api/providers", bytes.NewReader([]byte(`{"name":"px"}`)))
	pr := httptest.NewRecorder()
	w.cached.ServeHTTP(pr, req)
	if pr.Code != http.StatusCreated || pr.Header().Get("Deprecation") == "" || pr.Header().Get("Link") != `</api/v1/providers>; rel="successor-version"` {
		t.Fatalf("POST alias = %d headers=%v", pr.Code, pr.Header())
	}
}

// TestRespCacheCoherence hammers the dashboard route with conditional GETs
// while a writer completes tasks, and checks the 304 freshness invariant:
// a revalidated body must reflect every write acknowledged before the
// conditional request was issued. Run under -race this also exercises the
// cache's concurrent fill/withdraw/evict paths.
func TestRespCacheCoherence(t *testing.T) {
	w := newServingWorld(t)
	srv := httptest.NewServer(w.cached)
	defer srv.Close()
	path := srv.URL + "/api/v1/projects/" + w.project

	var completed atomic.Int64 // tasks acknowledged to the writer
	const writes = 120

	var wg sync.WaitGroup
	writerDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		ctx := t.Context()
		for i := 0; i < writes; i++ {
			task, err := w.svc.RequestTask(ctx, w.project, w.tagger)
			if err != nil {
				t.Errorf("request: %v", err)
				return
			}
			if err := w.svc.SubmitTask(ctx, w.project, task.ID, []string{"go"}); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			completed.Add(1)
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var etag string
			var cached struct {
				Spent int `json:"spent"`
			}
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				snap := completed.Load()
				req, _ := http.NewRequest("GET", path, nil)
				if etag != "" {
					req.Header.Set("If-None-Match", etag)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusNotModified:
					// The invariant: a 304 proves the cached body's version
					// is current, so it includes every submit acknowledged
					// before this request started. Seeded baseline is zero
					// spent; each submit spends one task.
					if int64(cached.Spent) < snap-8 { // 8 setup submits predate the counter
						t.Errorf("stale 304: cached spent %d < %d acknowledged", cached.Spent, snap)
						return
					}
				case http.StatusOK:
					if err := json.Unmarshal(body, &cached); err != nil {
						t.Errorf("decode: %v", err)
						return
					}
					etag = resp.Header.Get("Etag")
				default:
					t.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Quiescent revalidation: fill once, then the validator must hold.
	req, _ := http.NewRequest("GET", path, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var last struct {
		Spent int `json:"spent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&last); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if int64(last.Spent) < writes {
		t.Fatalf("final spent %d < %d writes", last.Spent, writes)
	}
	req, _ = http.NewRequest("GET", path, nil)
	req.Header.Set("If-None-Match", resp.Header.Get("Etag"))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("quiescent revalidation = %d", resp2.StatusCode)
	}
}
