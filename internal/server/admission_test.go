package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"itag/internal/core"
	"itag/internal/store"
)

// newAdmissionServer builds a server with admission control on and the
// prom endpoint mounted, returning the Server for limiter manipulation.
func newAdmissionServer(t *testing.T) (*Server, *httptest.Server, *httptest.Server) {
	t.Helper()
	svc := core.NewService(store.NewCatalog(store.OpenMemory()), 99)
	s := NewWith(svc, Options{Admission: &AdmissionOptions{SLO: 100 * time.Millisecond}})
	srv := httptest.NewServer(s)
	prom := httptest.NewServer(s.PromHandler())
	t.Cleanup(func() {
		srv.Close()
		prom.Close()
		svc.Close()
	})
	return s, srv, prom
}

// TestAdmissionShedsWithRetryAfter pins the shed contract end to end:
// with the gate saturated, a task request gets 429, the taxonomy code,
// a Retry-After hint in whole seconds, the v1 envelope on v1 routes and
// the legacy string body on alias routes — while health and metrics are
// never gated, and releasing the slot re-admits traffic.
func TestAdmissionShedsWithRetryAfter(t *testing.T) {
	s, srv, prom := newAdmissionServer(t)

	// Saturate: ceiling of 1 with the only slot held.
	lim := s.Admission().Limiter()
	lim.SetLimit(1)
	release, ok := lim.TryAcquire()
	if !ok {
		t.Fatal("setup: could not take the only slot")
	}

	resp, err := http.Post(srv.URL+"/api/v1/projects/p-000001/tasks", "application/json",
		strings.NewReader(`{"tagger_id":"t-000001"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want whole seconds ≥ 1", resp.Header.Get("Retry-After"))
	}
	var env struct {
		Error struct {
			Code      string `json:"code"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("v1 shed body %s: %v", body, err)
	}
	if env.Error.Code != "resource_exhausted" {
		t.Errorf("shed code = %q, want resource_exhausted", env.Error.Code)
	}

	// Legacy alias: same 429, pre-v1 flat string error body.
	resp, err = http.Post(srv.URL+"/api/projects/p-000001/tasks", "application/json",
		strings.NewReader(`{"tagger_id":"t-000001"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("legacy shed status = %d, want 429", resp.StatusCode)
	}
	var legacy struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &legacy); err != nil || legacy.Error == "" {
		t.Errorf("legacy shed body = %s, want flat {\"error\": string}", body)
	}

	// Health and metrics are never gated, saturated or not.
	for _, path := range []string{"/api/v1/healthz", "/api/v1/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s under saturation = %d, want 200", path, resp.StatusCode)
		}
	}

	// Every shed is observable: limiter families and the error matrix.
	fams := scrape(t, prom.URL)
	if got := gaugeValue(fams, "itag_admission_limit"); got != 1 {
		t.Errorf("itag_admission_limit = %v, want 1", got)
	}
	if got := gaugeValue(fams, "itag_admission_shed_total"); got < 2 {
		t.Errorf("itag_admission_shed_total = %v, want ≥ 2", got)
	}
	if got := errorCellValue(fams, "api", "rate_limited"); got < 2 {
		t.Errorf("error matrix cell (api, rate_limited) = %v, want ≥ 2", got)
	}

	// Releasing the slot re-admits: the same request now reaches the
	// handler (404 unknown project — anything but 429).
	release()
	resp, err = http.Post(srv.URL+"/api/v1/projects/p-000001/tasks", "application/json",
		strings.NewReader(`{"tagger_id":"t-000001"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Error("request shed after the slot was released")
	}
}

// TestAdmissionOffByDefault: without Options.Admission nothing is gated
// and no admission families appear on the scrape.
func TestAdmissionOffByDefault(t *testing.T) {
	svc := core.NewService(store.NewCatalog(store.OpenMemory()), 99)
	s := New(svc, nil)
	prom := httptest.NewServer(s.PromHandler())
	defer prom.Close()
	if s.Admission() != nil {
		t.Fatal("admission governor built without opting in")
	}
	for _, f := range scrape(t, prom.URL) {
		if strings.HasPrefix(f.Name, "itag_admission_") {
			t.Errorf("family %s exposed with admission off", f.Name)
		}
	}
}

// TestAdmissionScrapeShedRace floods the gated route from many
// goroutines (all shedding against a held 1-slot gate) while scrapers
// hammer the Prometheus endpoint — run under -race this proves the new
// limiter families never tear against the shed hot path.
func TestAdmissionScrapeShedRace(t *testing.T) {
	s, srv, prom := newAdmissionServer(t)
	lim := s.Admission().Limiter()
	lim.SetLimit(1)
	release, ok := lim.TryAcquire()
	if !ok {
		t.Fatal("setup: could not take the only slot")
	}
	defer release()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Post(srv.URL+"/api/v1/projects/p-000001/tasks",
					"application/json", strings.NewReader(`{"tagger_id":"t-1"}`))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("status = %d, want 429", resp.StatusCode)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(prom.URL)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	fams := scrape(t, prom.URL)
	if got := gaugeValue(fams, "itag_admission_shed_total"); got < 200 {
		t.Errorf("itag_admission_shed_total = %v, want 200", got)
	}
	// Shed responses must stay out of the task route's latency histogram
	// (they would drag the p99 down exactly when the governor needs to
	// see overload); the error matrix carries them instead.
	if n, _, ok := s.Metrics().RouteObservations("POST /api/v1/projects/{id}/tasks"); ok && n > 0 {
		t.Errorf("%d shed requests leaked into the route histogram", n)
	}
}
