package quality

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Curve is a saturating convergence model for a resource's quality as a
// function of its post count:
//
//	q(k) = QMax − A·exp(−Lambda·k)
//
// Golder & Huberman's observation that rfds stabilize implies quality rises
// toward an asymptote; the exponential-saturation form captures that with
// three parameters and admits a fast fit. The Quality Manager fits one curve
// per resource from its observed quality series and uses it to project the
// gain of allocating extra posts (paper §I: "monitoring the projected
// quality gains"; §IV: the optimal allocation maximizes projected gains).
type Curve struct {
	QMax   float64 // asymptotic quality
	A      float64 // amplitude: QMax − q(0)
	Lambda float64 // convergence rate per post
}

// Eval returns the modeled quality at k posts, clamped to [0, 1].
func (c Curve) Eval(k int) float64 {
	return clamp01(c.QMax - c.A*math.Exp(-c.Lambda*float64(k)))
}

// Gain returns the projected quality gain of moving a resource from k posts
// to k+x posts. Non-positive x yields 0.
func (c Curve) Gain(k, x int) float64 {
	if x <= 0 {
		return 0
	}
	g := c.Eval(k+x) - c.Eval(k)
	if g < 0 {
		return 0
	}
	return g
}

// MarginalGain returns Gain(k, 1): the projected gain of one more post at
// post count k. It is decreasing in k (the curve is concave for Lambda>0,
// A>0), which is what makes greedy allocation optimal.
func (c Curve) MarginalGain(k int) float64 { return c.Gain(k, 1) }

// Valid reports whether the curve parameters are finite and well-formed.
func (c Curve) Valid() bool {
	for _, v := range []float64{c.QMax, c.A, c.Lambda} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return c.Lambda >= 0 && c.A >= 0 && c.QMax >= 0 && c.QMax <= 1.0000001
}

// String formats the curve.
func (c Curve) String() string {
	return fmt.Sprintf("q(k)=%.4f-%.4f*exp(-%.5f*k)", c.QMax, c.A, c.Lambda)
}

// ErrInsufficientData is returned by Fit when fewer than three usable
// observations are provided.
var ErrInsufficientData = errors.New("quality: curve fit requires at least 3 observations")

// Fit fits a Curve to observations (ks[i], qs[i]) by least squares.
//
// Given Lambda, the model is linear in (QMax, A): q = QMax − A·z with
// z = exp(−Lambda·k), solved in closed form; Lambda itself is found by a
// log-spaced grid search refined with golden-section. Observations with
// q outside [0,1] or non-positive k are ignored.
func Fit(ks []int, qs []float64) (Curve, error) {
	if len(ks) != len(qs) {
		return Curve{}, fmt.Errorf("quality: mismatched fit inputs: %d ks vs %d qs", len(ks), len(qs))
	}
	var fk []float64
	var fq []float64
	for i, k := range ks {
		q := qs[i]
		if k <= 0 || q < 0 || q > 1 || math.IsNaN(q) {
			continue
		}
		fk = append(fk, float64(k))
		fq = append(fq, q)
	}
	if len(fk) < 3 {
		return Curve{}, ErrInsufficientData
	}

	sse := func(lambda float64) (float64, Curve) {
		// Linear least squares for q = QMax − A·z, z = exp(−λk).
		n := float64(len(fk))
		var sz, szz, sq, szq float64
		for i := range fk {
			z := math.Exp(-lambda * fk[i])
			sz += z
			szz += z * z
			sq += fq[i]
			szq += z * fq[i]
		}
		det := n*szz - sz*sz
		if math.Abs(det) < 1e-18 {
			return math.Inf(1), Curve{}
		}
		// Solve [n  sz; sz szz] [QMax; -A] = [sq; szq]
		qmax := (sq*szz - sz*szq) / det
		negA := (n*szq - sz*sq) / det
		a := -negA
		c := Curve{QMax: qmax, A: a, Lambda: lambda}
		var s float64
		for i := range fk {
			d := fq[i] - (qmax - a*math.Exp(-lambda*fk[i]))
			s += d * d
		}
		return s, c
	}

	// Grid over lambda spanning convergence half-lives from ~1 post to the
	// observation horizon.
	maxK := fk[0]
	for _, k := range fk {
		if k > maxK {
			maxK = k
		}
	}
	lo, hi := 1e-4, 2.0
	if maxK > 1 {
		lo = math.Max(1e-5, 0.05/maxK)
	}
	best := math.Inf(1)
	var bestC Curve
	bestL := lo
	const gridN = 48
	for i := 0; i <= gridN; i++ {
		l := lo * math.Pow(hi/lo, float64(i)/gridN)
		s, c := sse(l)
		if s < best {
			best, bestC, bestL = s, c, l
		}
	}
	// Golden-section refine around bestL.
	a := bestL / 2.5
	b := bestL * 2.5
	if b > hi {
		b = hi
	}
	if a < lo {
		a = lo
	}
	const phi = 0.6180339887498949
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, c1 := sse(x1)
	f2, c2 := sse(x2)
	for iter := 0; iter < 40 && (b-a) > 1e-7; iter++ {
		if f1 < f2 {
			b, x2, f2, c2 = x2, x1, f1, c1
			x1 = b - phi*(b-a)
			f1, c1 = sse(x1)
		} else {
			a, x1, f1, c1 = x1, x2, f2, c2
			x2 = a + phi*(b-a)
			f2, c2 = sse(x2)
		}
	}
	if f1 < best {
		best, bestC = f1, c1
	}
	if f2 < best {
		best, bestC = f2, c2
	}

	// Sanitize: clamp into model-meaningful ranges.
	if bestC.QMax > 1 {
		bestC.QMax = 1
	}
	if bestC.QMax < 0 {
		bestC.QMax = 0
	}
	if bestC.A < 0 {
		bestC.A = 0
	}
	if bestC.A > bestC.QMax {
		bestC.A = bestC.QMax
	}
	if !bestC.Valid() {
		return Curve{}, fmt.Errorf("quality: fit produced invalid curve %v", bestC)
	}
	return bestC, nil
}

// FitSeries fits a curve to a tracker-style quality series where the i-th
// value is the quality after post i+1.
func FitSeries(series []float64) (Curve, error) {
	ks := make([]int, len(series))
	for i := range series {
		ks[i] = i + 1
	}
	return Fit(ks, series)
}

// GainTable precomputes, for one resource, the projected cumulative gains
// g(x) = q(k0+x) − q(k0) for x in [0, maxX]. The optimal allocators consume
// these tables. Gains are non-decreasing and concave by construction (the
// table enforces both, guarding against fit noise).
type GainTable struct {
	k0    int
	gains []float64 // gains[x] = projected cumulative gain of x extra posts
}

// NewGainTable builds a table from a curve at current post count k0.
func NewGainTable(c Curve, k0, maxX int) *GainTable {
	if maxX < 0 {
		maxX = 0
	}
	g := make([]float64, maxX+1)
	prevMarginal := math.Inf(1)
	for x := 1; x <= maxX; x++ {
		m := c.Eval(k0+x) - c.Eval(k0+x-1)
		if m < 0 {
			m = 0
		}
		if m > prevMarginal {
			m = prevMarginal // enforce concavity
		}
		prevMarginal = m
		g[x] = g[x-1] + m
	}
	return &GainTable{k0: k0, gains: g}
}

// NewGainTableFromValues builds a table directly from projected quality
// values q(k0), q(k0+1), ..., enforcing monotone concave gains. Used when
// gains come from Monte-Carlo estimates rather than a fitted curve.
func NewGainTableFromValues(values []float64, k0 int) *GainTable {
	if len(values) == 0 {
		return &GainTable{k0: k0, gains: []float64{0}}
	}
	g := make([]float64, len(values))
	prevMarginal := math.Inf(1)
	for x := 1; x < len(values); x++ {
		m := values[x] - values[x-1]
		if m < 0 {
			m = 0
		}
		if m > prevMarginal {
			m = prevMarginal
		}
		prevMarginal = m
		g[x] = g[x-1] + m
	}
	return &GainTable{k0: k0, gains: g}
}

// Gain returns the cumulative projected gain of x extra posts.
func (t *GainTable) Gain(x int) float64 {
	if x <= 0 || len(t.gains) == 0 {
		return 0
	}
	if x >= len(t.gains) {
		return t.gains[len(t.gains)-1]
	}
	return t.gains[x]
}

// Marginal returns the projected gain of the (x+1)-th extra post given x
// already allocated.
func (t *GainTable) Marginal(x int) float64 {
	return t.Gain(x+1) - t.Gain(x)
}

// MaxX returns the largest precomputed allocation.
func (t *GainTable) MaxX() int { return len(t.gains) - 1 }

// K0 returns the post count the table was computed at.
func (t *GainTable) K0() int { return t.k0 }

// Quantile returns the p-th quantile (0<=p<=1) of a quality slice; used by
// experiment reports. The input is not modified.
func Quantile(qs []float64, p float64) float64 {
	if len(qs) == 0 {
		return 0
	}
	cp := make([]float64, len(qs))
	copy(cp, qs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 1 {
		return cp[len(cp)-1]
	}
	pos := p * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}
