package quality

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"itag/internal/rfd"
	"itag/internal/vocab"
)

// These property tests pin the tentpole refactor's contract: the interned
// quality path (Tracker over vocab.Interner + rfd.IHistory/Ref) is
// numerically equivalent — within 1e-12 — to the retained map-path
// reference (MapTracker over rfd.History) on randomized post streams, for
// every metric. CI runs this package under -race, so the shared interner is
// also exercised for data races when trackers are built concurrently.

const parityTol = 1e-12

func parityPool() []string {
	return []string{
		"go", "Go", " GO ", "database", "tagging", "web", "toread", "design",
		"paper", "icde", "crowd", "quality", "rfd", "stability", "alpha",
		"beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
	}
}

func parityPost(r *rand.Rand, pool []string) []string {
	if r.Intn(40) == 0 {
		return nil // exercise the empty-post error path
	}
	if r.Intn(40) == 0 {
		return []string{" ", ""} // exercise the no-usable-tags error path
	}
	n := 1 + r.Intn(5)
	post := make([]string, 0, n)
	for i := 0; i < n; i++ {
		post = append(post, pool[r.Intn(len(pool))])
	}
	return post
}

func TestPropertyInternedTrackerMatchesMapPath(t *testing.T) {
	metrics := []Metric{MetricCosine, MetricJSD, MetricL1, MetricHellinger}
	shared := vocab.NewInterner() // one vocabulary across all streams, as in an engine
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{
			Metric:   metrics[int(seed)%len(metrics)],
			Window:   1 + r.Intn(12),
			MinPosts: 1 + r.Intn(3),
		}
		ti := NewTrackerShared(cfg, shared)
		tm := NewMapTracker(cfg)
		for p := 0; p < 160; p++ {
			post := parityPost(r, parityPool())
			errI, errM := ti.AddPost(post), tm.AddPost(post)
			if (errI == nil) != (errM == nil) {
				t.Fatalf("seed %d post %d: interned err %v vs map err %v", seed, p, errI, errM)
			}
			if errI != nil {
				continue
			}
			if d := math.Abs(ti.Quality() - tm.Quality()); d > parityTol {
				t.Fatalf("seed %d post %d (%s): quality diverges by %g (%v vs %v)",
					seed, p, cfg.Metric, d, ti.Quality(), tm.Quality())
			}
		}
		si, sm := ti.Series(), tm.Series()
		if len(si) != len(sm) {
			t.Fatalf("seed %d: series lengths %d vs %d", seed, len(si), len(sm))
		}
		for i := range si {
			if math.Abs(si[i]-sm[i]) > parityTol {
				t.Fatalf("seed %d: series[%d] diverges: %v vs %v", seed, i, si[i], sm[i])
			}
		}
		if ti.Posts() != tm.Posts() {
			t.Fatalf("seed %d: posts %d vs %d", seed, ti.Posts(), tm.Posts())
		}
		di, dm := ti.Dist(), tm.Dist()
		if len(di) != len(dm) {
			t.Fatalf("seed %d: dist supports %d vs %d", seed, len(di), len(dm))
		}
		for tag, v := range dm {
			if math.Abs(di[tag]-v) > parityTol {
				t.Fatalf("seed %d: dist[%q] = %v vs %v", seed, tag, di[tag], v)
			}
		}
		if !reflect.DeepEqual(ti.Counts().TopK(10), tm.Counts().TopK(10)) {
			t.Fatalf("seed %d: TopK diverges", seed)
		}
		if ti.Converged(0.5, 3) != tm.Converged(0.5, 3) {
			t.Fatalf("seed %d: Converged diverges", seed)
		}
	}
}

// TestPropertyOracleRefMatchesOracle checks the interned oracle path
// against the map-path Oracle for every metric while the tracked rfd grows.
func TestPropertyOracleRefMatchesOracle(t *testing.T) {
	metrics := []Metric{MetricCosine, MetricJSD, MetricL1, MetricHellinger}
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		pool := parityPool()
		// Random latent reference over a mix of posted and never-posted tags.
		ref := rfd.Dist{}
		for i := 0; i < 8; i++ {
			ref[pool[r.Intn(len(pool))]] = r.Float64()
		}
		ref["latent-only-tag"] = 0.5
		ref = rfd.Normalized(ref)

		tr := NewTrackerShared(Config{}, vocab.NewInterner())
		refs := make([]*rfd.Ref, len(metrics))
		for i := range metrics {
			refs[i] = tr.NewRef(ref)
		}
		check := func(stage string) {
			t.Helper()
			cur := tr.Dist()
			for i, m := range metrics {
				got := OracleRef(m, refs[i])
				want := Oracle(m, cur, ref)
				if math.Abs(got-want) > parityTol {
					t.Fatalf("seed %d %s (%s): OracleRef %v vs Oracle %v", seed, stage, m, got, want)
				}
			}
		}
		check("cold")
		for p := 0; p < 120; p++ {
			post := parityPost(r, pool)
			if err := tr.AddPost(post); err != nil {
				continue
			}
			if p%15 == 0 {
				check("warm")
			}
		}
		check("final")
	}
}
