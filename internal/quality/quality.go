// Package quality implements the iTag tagging-quality model (paper §II).
//
// The quality q_i(k) of a resource with k posts is defined on the stability
// of its relative frequency distributions (rfds): a resource whose rfd stops
// changing as posts accumulate is well described by its tags. Two readings
// of the definition are implemented:
//
//   - Stability quality (online): similarity between the rfd at k posts and
//     the rfd at k−w posts, with window w = min(k−1, W). This is computable
//     by the live system and is what the Most-Unstable-first (MU) strategy
//     ranks on.
//   - Oracle quality (evaluation): similarity between the current rfd and a
//     reference distribution — the latent true distribution in simulation,
//     or the final replay rfd on a trace. Experiments report this as ground
//     truth; the optimal allocator maximizes its predicted value.
//
// The package also fits saturating convergence curves to observed quality
// series so the system can project quality gains for a budget before
// spending it (the "projected quality gains" monitoring in paper §I).
package quality

import (
	"fmt"
	"math"

	"itag/internal/rfd"
	"itag/internal/vocab"
)

// Metric selects the similarity measure used to compare two rfds. All
// metrics are mapped into [0, 1] where 1 means identical distributions.
type Metric int

const (
	// MetricCosine is cosine similarity (the default).
	MetricCosine Metric = iota
	// MetricJSD is 1 − JSD/ln2 (Jensen-Shannon divergence, normalized).
	MetricJSD
	// MetricL1 is 1 − L1/2 (total variation complement).
	MetricL1
	// MetricHellinger is 1 − Hellinger distance.
	MetricHellinger
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case MetricCosine:
		return "cosine"
	case MetricJSD:
		return "jsd"
	case MetricL1:
		return "l1"
	case MetricHellinger:
		return "hellinger"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// ParseMetric resolves a metric by name.
func ParseMetric(name string) (Metric, error) {
	switch name {
	case "cosine", "":
		return MetricCosine, nil
	case "jsd":
		return MetricJSD, nil
	case "l1":
		return MetricL1, nil
	case "hellinger":
		return MetricHellinger, nil
	default:
		return 0, fmt.Errorf("quality: unknown metric %q", name)
	}
}

// Similarity returns the [0,1] similarity between two rfds under the metric.
// If both distributions are empty the similarity is 0 (no evidence).
func (m Metric) Similarity(a, b rfd.Dist) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	switch m {
	case MetricJSD:
		return clamp01(1 - rfd.JSD(a, b)/math.Ln2)
	case MetricL1:
		return clamp01(1 - rfd.L1(a, b)/2)
	case MetricHellinger:
		return clamp01(1 - rfd.Hellinger(a, b))
	default:
		return clamp01(rfd.Cosine(a, b))
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Config parameterizes the stability quality metric.
type Config struct {
	// Metric is the rfd similarity measure (default cosine).
	Metric Metric
	// Window W: quality at k posts compares rfd(k) with rfd(k−w),
	// w = min(k−1, W). Default DefaultWindow.
	Window int
	// MinPosts is the post count below which quality is defined as 0
	// (a single post gives no stability evidence). Default 2.
	MinPosts int
}

// DefaultWindow is the default stability window W.
const DefaultWindow = 10

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.MinPosts <= 0 {
		c.MinPosts = 2
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Window < 0 {
		return fmt.Errorf("quality: window must be non-negative, got %d", c.Window)
	}
	if c.Window > rfd.DefaultHistoryDepth {
		return fmt.Errorf("quality: window %d exceeds retained history depth %d", c.Window, rfd.DefaultHistoryDepth)
	}
	if c.MinPosts < 0 {
		return fmt.Errorf("quality: min posts must be non-negative, got %d", c.MinPosts)
	}
	return nil
}

// historyDepth is the snapshot retention both tracker implementations use.
func historyDepth(cfg Config) int {
	depth := cfg.Window + 1
	if depth < rfd.DefaultHistoryDepth {
		depth = rfd.DefaultHistoryDepth
	}
	return depth
}

// Tracker maintains one resource's rfd history and its stability-quality
// series on the interned hot path: tags become dense IDs through a shared
// interner, counts live in an ID-indexed vector with incrementally
// maintained norms, and the snapshot window is a copy-free delta ring — so
// each AddPost updates the quality in O(tags-in-window) for cosine (one
// array pass over the resource's support for the shape metrics) instead of
// cloning and re-walking string-keyed maps. Semantics are identical to the
// retained MapTracker reference (see the parity property tests).
//
// It is not safe for concurrent use; callers synchronize.
type Tracker struct {
	cfg    Config
	hist   *rfd.IHistory
	series []float64 // stability quality after each post
}

// NewTracker returns a Tracker with the (defaulted) config and a private
// interner. Engines and other multi-resource callers should share one
// interner across trackers via NewTrackerShared.
func NewTracker(cfg Config) *Tracker {
	return NewTrackerShared(cfg, vocab.NewInterner())
}

// NewTrackerShared returns a Tracker interning tags through in — the
// per-project (or wider) shared vocabulary. The history maintains the
// tracker's sliding comparison window incrementally, so the steady-state
// quality update costs O(tags-in-post).
func NewTrackerShared(cfg Config, in rfd.Interner) *Tracker {
	cfg = cfg.withDefaults()
	return &Tracker{cfg: cfg, hist: rfd.NewIHistoryWindow(in, historyDepth(cfg), cfg.Window)}
}

// AddPost records a post and appends the new quality to the series.
func (t *Tracker) AddPost(tags []string) error {
	if err := t.hist.AddPost(tags); err != nil {
		return err
	}
	t.series = append(t.series, t.compute())
	return nil
}

func (t *Tracker) compute() float64 {
	k := t.hist.Posts()
	if k < t.cfg.MinPosts || k < 2 {
		return 0
	}
	w := t.cfg.Window
	if w > k-1 {
		w = k - 1
	}
	if v, ok := t.cfg.Metric.windowSimilarity(t.hist, w); ok {
		return v
	}
	// Window exceeds retained depth; fall back to deepest retained.
	d := t.hist.Depth() - 1
	if d < 1 {
		return 0
	}
	v, _ := t.cfg.Metric.windowSimilarity(t.hist, d)
	return v
}

// windowSimilarity maps the metric onto IHistory's incremental window
// comparisons, applying the same [0,1] transforms as Similarity.
func (m Metric) windowSimilarity(h *rfd.IHistory, back int) (float64, bool) {
	switch m {
	case MetricJSD:
		v, ok := h.WindowJSD(back)
		return clamp01(1 - v/math.Ln2), ok
	case MetricL1:
		v, ok := h.WindowL1(back)
		return clamp01(1 - v/2), ok
	case MetricHellinger:
		v, ok := h.WindowHellinger(back)
		return clamp01(1 - v), ok
	default:
		v, ok := h.WindowCosine(back)
		return clamp01(v), ok
	}
}

// Quality returns the current stability quality in [0, 1].
func (t *Tracker) Quality() float64 {
	if len(t.series) == 0 {
		return 0
	}
	return t.series[len(t.series)-1]
}

// Instability returns 1 − Quality; the MU strategy ranks descending on this.
func (t *Tracker) Instability() float64 { return 1 - t.Quality() }

// Posts returns how many posts have been recorded.
func (t *Tracker) Posts() int { return t.hist.Posts() }

// Dist returns the current rfd as a string-keyed map (boundary copy).
func (t *Tracker) Dist() rfd.Dist { return t.hist.Counts().Dist() }

// Counts exposes the interned tag counts (for UIs/exports; treat as
// read-only). Tag strings are resolved at this boundary (TopK, Dist).
func (t *Tracker) Counts() *rfd.ICounts { return t.hist.Counts() }

// NewRef binds a reference distribution to this tracker's counts for fast
// repeated oracle evaluation (see OracleRef).
func (t *Tracker) NewRef(ref rfd.Dist) *rfd.Ref {
	return rfd.NewRef(t.hist.Counts(), ref)
}

// Series returns the quality value after each post (copy).
func (t *Tracker) Series() []float64 {
	out := make([]float64, len(t.series))
	copy(out, t.series)
	return out
}

// Config returns the tracker's effective configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Converged reports whether the last `span` quality values are all at least
// tau. It is the Quality Manager's stopping criterion for a resource.
func (t *Tracker) Converged(tau float64, span int) bool {
	return converged(t.series, tau, span)
}

func converged(series []float64, tau float64, span int) bool {
	if span <= 0 {
		span = 3
	}
	if len(series) < span {
		return false
	}
	for _, q := range series[len(series)-span:] {
		if q < tau {
			return false
		}
	}
	return true
}

// Oracle computes the oracle quality of a current rfd against a reference
// distribution under the metric. Use in evaluation and by the optimal
// allocator, never by live strategies (the reference is latent).
func Oracle(m Metric, current, reference rfd.Dist) float64 {
	return m.Similarity(current, reference)
}

// OracleRef is Oracle on the interned hot path: the reference was bound to
// an ICounts once (Tracker.NewRef / rfd.NewRef) and every evaluation is a
// single array pass instead of two map walks.
func OracleRef(m Metric, r *rfd.Ref) float64 {
	if r.BothEmpty() {
		return 0
	}
	switch m {
	case MetricJSD:
		return clamp01(1 - r.JSD()/math.Ln2)
	case MetricL1:
		return clamp01(1 - r.L1()/2)
	case MetricHellinger:
		return clamp01(1 - r.Hellinger())
	default:
		return clamp01(r.Cosine())
	}
}

// MeanQuality returns the average of per-resource qualities — the paper's
// q(R, k̄) = (1/n) Σ q_i(k_i). An empty slice yields 0.
func MeanQuality(qs []float64) float64 {
	if len(qs) == 0 {
		return 0
	}
	var s float64
	for _, q := range qs {
		s += q
	}
	return s / float64(len(qs))
}

// CountAtLeast returns how many qualities meet the threshold tau (Table I,
// MU row: "resources that can satisfy a certain quality requirement").
func CountAtLeast(qs []float64, tau float64) int {
	n := 0
	for _, q := range qs {
		if q >= tau {
			n++
		}
	}
	return n
}

// CountBelow returns how many qualities fall below tau (Table I, FP row:
// "resources with low tag quality").
func CountBelow(qs []float64, tau float64) int {
	n := 0
	for _, q := range qs {
		if q < tau {
			n++
		}
	}
	return n
}
