package quality

import "itag/internal/rfd"

// MapTracker is the retained map-path reference implementation of the
// stability tracker: string-keyed rfd maps, a ring of materialized Dist
// snapshots, and full-distribution similarity recomputation per post.
//
// It is the semantic baseline the interned Tracker must match bit-for-bit
// (up to float rounding): the parity property tests compare the two on
// randomized post streams, and the S6 experiment measures the interned
// path's throughput against this one. It is not used on any hot path.
type MapTracker struct {
	cfg    Config
	hist   *rfd.History
	series []float64
}

// NewMapTracker returns a MapTracker with the (defaulted) config.
func NewMapTracker(cfg Config) *MapTracker {
	cfg = cfg.withDefaults()
	return &MapTracker{cfg: cfg, hist: rfd.NewHistory(historyDepth(cfg))}
}

// AddPost records a post and appends the new quality to the series.
func (t *MapTracker) AddPost(tags []string) error {
	if err := t.hist.AddPost(tags); err != nil {
		return err
	}
	t.series = append(t.series, t.compute())
	return nil
}

func (t *MapTracker) compute() float64 {
	k := t.hist.Posts()
	if k < t.cfg.MinPosts || k < 2 {
		return 0
	}
	w := t.cfg.Window
	if w > k-1 {
		w = k - 1
	}
	prev, ok := t.hist.Back(w)
	if !ok {
		// Window exceeds retained depth; fall back to deepest retained.
		d := t.hist.Depth() - 1
		if d < 1 {
			return 0
		}
		prev, _ = t.hist.Back(d)
	}
	return t.cfg.Metric.Similarity(t.hist.Current(), prev)
}

// Quality returns the current stability quality in [0, 1].
func (t *MapTracker) Quality() float64 {
	if len(t.series) == 0 {
		return 0
	}
	return t.series[len(t.series)-1]
}

// Instability returns 1 − Quality.
func (t *MapTracker) Instability() float64 { return 1 - t.Quality() }

// Posts returns how many posts have been recorded.
func (t *MapTracker) Posts() int { return t.hist.Posts() }

// Dist returns the current rfd (copy).
func (t *MapTracker) Dist() rfd.Dist { return t.hist.Current() }

// Counts exposes the raw tag counts (treat as read-only).
func (t *MapTracker) Counts() *rfd.Counts { return t.hist.Counts() }

// Series returns the quality value after each post (copy).
func (t *MapTracker) Series() []float64 {
	out := make([]float64, len(t.series))
	copy(out, t.series)
	return out
}

// Config returns the tracker's effective configuration.
func (t *MapTracker) Config() Config { return t.cfg }

// Converged reports whether the last `span` quality values are all at least
// tau.
func (t *MapTracker) Converged(tau float64, span int) bool {
	return converged(t.series, tau, span)
}
