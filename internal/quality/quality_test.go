package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"itag/internal/rfd"
)

func TestParseMetric(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Metric
	}{
		{"cosine", MetricCosine}, {"", MetricCosine}, {"jsd", MetricJSD},
		{"l1", MetricL1}, {"hellinger", MetricHellinger},
	} {
		got, err := ParseMetric(tc.name)
		if err != nil || got != tc.want {
			t.Errorf("ParseMetric(%q) = %v, %v", tc.name, got, err)
		}
	}
	if _, err := ParseMetric("nope"); err == nil {
		t.Error("unknown metric must error")
	}
}

func TestMetricStringRoundTrip(t *testing.T) {
	for _, m := range []Metric{MetricCosine, MetricJSD, MetricL1, MetricHellinger} {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v failed: %v %v", m, got, err)
		}
	}
}

func TestSimilarityIdentityAndBounds(t *testing.T) {
	a := rfd.Dist{"x": 0.7, "y": 0.3}
	b := rfd.Dist{"z": 1}
	for _, m := range []Metric{MetricCosine, MetricJSD, MetricL1, MetricHellinger} {
		if got := m.Similarity(a, a); math.Abs(got-1) > 1e-9 {
			t.Errorf("%v: self-similarity = %v", m, got)
		}
		got := m.Similarity(a, b)
		if got < 0 || got > 1 {
			t.Errorf("%v: similarity out of range: %v", m, got)
		}
		if got > 0.01 {
			t.Errorf("%v: disjoint similarity should be ~0, got %v", m, got)
		}
		if e := m.Similarity(rfd.Dist{}, rfd.Dist{}); e != 0 {
			t.Errorf("%v: empty-vs-empty = %v", m, e)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Window: -1}).Validate(); err == nil {
		t.Error("negative window must fail")
	}
	if err := (Config{Window: rfd.DefaultHistoryDepth + 1}).Validate(); err == nil {
		t.Error("window beyond history depth must fail")
	}
	if err := (Config{MinPosts: -1}).Validate(); err == nil {
		t.Error("negative min posts must fail")
	}
	if err := (Config{Window: 5, MinPosts: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestTrackerQualityRisesOnStableStream(t *testing.T) {
	// Posts drawn from a fixed distribution: quality must approach 1.
	tr := NewTracker(Config{Window: 5})
	r := rand.New(rand.NewSource(42))
	pool := []string{"go", "db", "sql", "tags", "web"}
	for i := 0; i < 200; i++ {
		n := r.Intn(3) + 1
		post := make([]string, 0, n)
		for j := 0; j < n; j++ {
			post = append(post, pool[r.Intn(len(pool))])
		}
		if err := tr.AddPost(post); err != nil {
			t.Fatal(err)
		}
	}
	if q := tr.Quality(); q < 0.95 {
		t.Errorf("stable stream quality = %v, want >= 0.95", q)
	}
	if tr.Posts() != 200 {
		t.Errorf("posts = %d", tr.Posts())
	}
}

func TestTrackerZeroQualityBeforeMinPosts(t *testing.T) {
	tr := NewTracker(Config{MinPosts: 3})
	_ = tr.AddPost([]string{"a"})
	_ = tr.AddPost([]string{"a"})
	if q := tr.Quality(); q != 0 {
		t.Errorf("quality below MinPosts = %v, want 0", q)
	}
	_ = tr.AddPost([]string{"a"})
	if q := tr.Quality(); q <= 0 {
		t.Errorf("quality at MinPosts = %v, want > 0", q)
	}
}

func TestTrackerInstabilityComplement(t *testing.T) {
	tr := NewTracker(Config{})
	_ = tr.AddPost([]string{"a"})
	_ = tr.AddPost([]string{"a"})
	if math.Abs(tr.Quality()+tr.Instability()-1) > 1e-12 {
		t.Error("instability must be 1 - quality")
	}
}

func TestTrackerSeriesLengthMatchesPosts(t *testing.T) {
	tr := NewTracker(Config{})
	for i := 0; i < 10; i++ {
		_ = tr.AddPost([]string{"x", "y"})
	}
	if len(tr.Series()) != 10 {
		t.Errorf("series length = %d", len(tr.Series()))
	}
	s := tr.Series()
	s[0] = -5
	if tr.Series()[0] == -5 {
		t.Error("Series must return a copy")
	}
}

func TestTrackerDivergingStreamHasLowQuality(t *testing.T) {
	// Alternate between completely different tag sets each window: the rfd
	// keeps shifting, so stability must stay well below a converged stream.
	tr := NewTracker(Config{Window: 5})
	for i := 0; i < 40; i++ {
		tag := string(rune('a' + i%26))
		_ = tr.AddPost([]string{tag, tag + "2"})
	}
	stable := NewTracker(Config{Window: 5})
	for i := 0; i < 40; i++ {
		_ = stable.AddPost([]string{"a", "b"})
	}
	if tr.Quality() >= stable.Quality() {
		t.Errorf("diverging %v should be below stable %v", tr.Quality(), stable.Quality())
	}
}

func TestConverged(t *testing.T) {
	tr := NewTracker(Config{Window: 2})
	if tr.Converged(0.5, 3) {
		t.Error("empty tracker cannot be converged")
	}
	for i := 0; i < 20; i++ {
		_ = tr.AddPost([]string{"a"})
	}
	if !tr.Converged(0.99, 3) {
		t.Errorf("constant stream must converge, q=%v", tr.Quality())
	}
	if !tr.Converged(0.99, 0) { // span defaulted
		t.Error("span<=0 must default, not panic")
	}
}

func TestOracleQuality(t *testing.T) {
	ref := rfd.Dist{"a": 0.5, "b": 0.5}
	if got := Oracle(MetricCosine, ref, ref); math.Abs(got-1) > 1e-9 {
		t.Errorf("oracle self = %v", got)
	}
	if got := Oracle(MetricCosine, rfd.Dist{"z": 1}, ref); got != 0 {
		t.Errorf("oracle disjoint = %v", got)
	}
}

func TestAggregates(t *testing.T) {
	qs := []float64{0.2, 0.4, 0.9, 1.0}
	if got := MeanQuality(qs); math.Abs(got-0.625) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if MeanQuality(nil) != 0 {
		t.Error("empty mean must be 0")
	}
	if got := CountAtLeast(qs, 0.9); got != 2 {
		t.Errorf("CountAtLeast = %d", got)
	}
	if got := CountBelow(qs, 0.5); got != 2 {
		t.Errorf("CountBelow = %d", got)
	}
}

func TestCurveEvalAndGain(t *testing.T) {
	c := Curve{QMax: 0.95, A: 0.8, Lambda: 0.05}
	if got := c.Eval(0); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("eval(0) = %v", got)
	}
	if c.Eval(1000) < 0.94 {
		t.Errorf("asymptote not reached: %v", c.Eval(1000))
	}
	if c.Gain(5, 0) != 0 || c.Gain(5, -3) != 0 {
		t.Error("non-positive x must give zero gain")
	}
	if c.Gain(0, 10) <= c.Gain(50, 10) {
		t.Error("gains must diminish with k (concavity)")
	}
	if math.Abs(c.MarginalGain(3)-c.Gain(3, 1)) > 1e-12 {
		t.Error("MarginalGain must equal Gain(k,1)")
	}
}

func TestCurveValid(t *testing.T) {
	if !(Curve{QMax: 0.9, A: 0.5, Lambda: 0.1}).Valid() {
		t.Error("well-formed curve must be valid")
	}
	bad := []Curve{
		{QMax: math.NaN(), A: 0.5, Lambda: 0.1},
		{QMax: 0.9, A: -1, Lambda: 0.1},
		{QMax: 0.9, A: 0.5, Lambda: -0.1},
		{QMax: 1.5, A: 0.5, Lambda: 0.1},
	}
	for i, c := range bad {
		if c.Valid() {
			t.Errorf("case %d: invalid curve accepted: %v", i, c)
		}
	}
}

func TestFitRecoversKnownCurve(t *testing.T) {
	truth := Curve{QMax: 0.92, A: 0.7, Lambda: 0.08}
	var ks []int
	var qs []float64
	for k := 1; k <= 120; k++ {
		ks = append(ks, k)
		qs = append(qs, truth.Eval(k))
	}
	got, err := Fit(ks, qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{5, 20, 60, 150} {
		if math.Abs(got.Eval(k)-truth.Eval(k)) > 0.02 {
			t.Errorf("k=%d: fitted %v vs truth %v (curve %v)", k, got.Eval(k), truth.Eval(k), got)
		}
	}
}

func TestFitWithNoise(t *testing.T) {
	truth := Curve{QMax: 0.9, A: 0.6, Lambda: 0.05}
	r := rand.New(rand.NewSource(7))
	var ks []int
	var qs []float64
	for k := 1; k <= 150; k++ {
		ks = append(ks, k)
		qs = append(qs, clamp01(truth.Eval(k)+r.NormFloat64()*0.02))
	}
	got, err := Fit(ks, qs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Eval(200)-truth.Eval(200)) > 0.05 {
		t.Errorf("asymptote off: fitted %v truth %v", got.Eval(200), truth.Eval(200))
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]int{1, 2}, []float64{0.1}); err == nil {
		t.Error("mismatched lengths must fail")
	}
	if _, err := Fit([]int{1, 2}, []float64{0.1, 0.2}); err != ErrInsufficientData {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
	// Garbage observations filtered out -> insufficient.
	if _, err := Fit([]int{-1, 0, 3}, []float64{0.5, 2.0, math.NaN()}); err != ErrInsufficientData {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
}

func TestFitSeries(t *testing.T) {
	truth := Curve{QMax: 0.85, A: 0.5, Lambda: 0.1}
	series := make([]float64, 80)
	for i := range series {
		series[i] = truth.Eval(i + 1)
	}
	got, err := FitSeries(series)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Eval(40)-truth.Eval(40)) > 0.02 {
		t.Errorf("FitSeries eval(40): %v vs %v", got.Eval(40), truth.Eval(40))
	}
}

func TestGainTableMonotoneConcave(t *testing.T) {
	c := Curve{QMax: 0.95, A: 0.9, Lambda: 0.07}
	gt := NewGainTable(c, 10, 50)
	prevGain := -1.0
	prevMarginal := math.Inf(1)
	for x := 0; x <= gt.MaxX(); x++ {
		g := gt.Gain(x)
		if g < prevGain-1e-12 {
			t.Fatalf("gain not monotone at x=%d", x)
		}
		prevGain = g
		if x < gt.MaxX() {
			m := gt.Marginal(x)
			if m > prevMarginal+1e-12 {
				t.Fatalf("marginal not decreasing at x=%d: %v > %v", x, m, prevMarginal)
			}
			prevMarginal = m
		}
	}
	if gt.Gain(-1) != 0 || gt.Gain(0) != 0 {
		t.Error("gain at x<=0 must be 0")
	}
	if gt.Gain(1000) != gt.Gain(gt.MaxX()) {
		t.Error("gain beyond table must clamp")
	}
	if gt.K0() != 10 {
		t.Errorf("k0 = %d", gt.K0())
	}
}

func TestGainTableFromValuesEnforcesConcavity(t *testing.T) {
	// Noisy, even decreasing values: the table must still be monotone concave.
	values := []float64{0.3, 0.5, 0.45, 0.7, 0.71, 0.70}
	gt := NewGainTableFromValues(values, 0)
	prevM := math.Inf(1)
	for x := 0; x < gt.MaxX(); x++ {
		m := gt.Marginal(x)
		if m < 0 {
			t.Fatalf("negative marginal at %d", x)
		}
		if m > prevM+1e-12 {
			t.Fatalf("marginal increased at %d", x)
		}
		prevM = m
	}
	empty := NewGainTableFromValues(nil, 5)
	if empty.Gain(3) != 0 {
		t.Error("empty table gain must be 0")
	}
}

func TestQuantile(t *testing.T) {
	qs := []float64{0.1, 0.9, 0.5, 0.3, 0.7}
	if got := Quantile(qs, 0); got != 0.1 {
		t.Errorf("p=0: %v", got)
	}
	if got := Quantile(qs, 1); got != 0.9 {
		t.Errorf("p=1: %v", got)
	}
	if got := Quantile(qs, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("median: %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
	// Input must not be reordered.
	if qs[0] != 0.1 || qs[1] != 0.9 {
		t.Error("Quantile must not modify input")
	}
}

func TestPropertySimilarityBounds(t *testing.T) {
	metrics := []Metric{MetricCosine, MetricJSD, MetricL1, MetricHellinger}
	f := func(aw, bw [6]uint8) bool {
		tags := []string{"t1", "t2", "t3", "t4", "t5", "t6"}
		a := make(rfd.Dist)
		b := make(rfd.Dist)
		var sa, sb float64
		for i := range tags {
			sa += float64(aw[i])
			sb += float64(bw[i])
		}
		for i, tag := range tags {
			if sa > 0 {
				a[tag] = float64(aw[i]) / sa
			}
			if sb > 0 {
				b[tag] = float64(bw[i]) / sb
			}
		}
		for _, m := range metrics {
			s := m.Similarity(a, b)
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
			if math.Abs(m.Similarity(a, b)-m.Similarity(b, a)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCurveGainAdditive(t *testing.T) {
	f := func(qmax8, a8, l8 uint8, k8, x8, y8 uint8) bool {
		c := Curve{
			QMax:   0.5 + float64(qmax8)/512.0,
			A:      float64(a8) / 512.0,
			Lambda: 0.001 + float64(l8)/256.0,
		}
		k := int(k8) % 100
		x := int(x8) % 50
		y := int(y8) % 50
		// Gain is additive along the path: g(k, x+y) = g(k,x) + g(k+x, y).
		lhs := c.Gain(k, x+y)
		rhs := c.Gain(k, x) + c.Gain(k+x, y)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrackerAddPost(b *testing.B) {
	tr := NewTracker(Config{})
	post := []string{"go", "db", "tags"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.AddPost(post)
	}
}

func BenchmarkFit(b *testing.B) {
	truth := Curve{QMax: 0.9, A: 0.7, Lambda: 0.06}
	var ks []int
	var qs []float64
	for k := 1; k <= 100; k++ {
		ks = append(ks, k)
		qs = append(qs, truth.Eval(k))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Fit(ks, qs)
	}
}
