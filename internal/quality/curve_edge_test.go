package quality

import (
	"math"
	"testing"
)

func TestFitConstantSeries(t *testing.T) {
	// A fully converged resource: quality flat at 0.9. The fit must return
	// a curve evaluating ~0.9 everywhere with ~zero marginal gains.
	ks := make([]int, 50)
	qs := make([]float64, 50)
	for i := range ks {
		ks[i] = i + 1
		qs[i] = 0.9
	}
	c, err := Fit(ks, qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 25, 100} {
		if math.Abs(c.Eval(k)-0.9) > 0.02 {
			t.Errorf("Eval(%d) = %v, want ~0.9", k, c.Eval(k))
		}
	}
	if g := c.Gain(50, 20); g > 0.02 {
		t.Errorf("converged curve projected gain %v", g)
	}
}

func TestFitDecreasingSeriesStillValid(t *testing.T) {
	// Pathological input (quality drops): the fit must still return a
	// valid, clamped curve rather than NaN garbage.
	ks := []int{1, 2, 3, 4, 5, 6}
	qs := []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4}
	c, err := Fit(ks, qs)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() {
		t.Errorf("invalid curve: %v", c)
	}
	for _, k := range []int{1, 10, 100} {
		v := c.Eval(k)
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Errorf("Eval(%d) = %v", k, v)
		}
	}
}

func TestGainTableZeroHorizon(t *testing.T) {
	c := Curve{QMax: 0.9, A: 0.5, Lambda: 0.1}
	gt := NewGainTable(c, 5, 0)
	if gt.MaxX() != 0 || gt.Gain(10) != 0 {
		t.Errorf("zero-horizon table: maxX=%d gain=%v", gt.MaxX(), gt.Gain(10))
	}
	gtNeg := NewGainTable(c, 5, -3)
	if gtNeg.MaxX() != 0 {
		t.Errorf("negative horizon must clamp: %d", gtNeg.MaxX())
	}
}

func TestCurveStringAndMarginalConsistency(t *testing.T) {
	c := Curve{QMax: 0.9, A: 0.5, Lambda: 0.1}
	if c.String() == "" {
		t.Error("empty String()")
	}
	// Sum of marginals equals cumulative gain.
	var sum float64
	for k := 0; k < 30; k++ {
		sum += c.MarginalGain(k)
	}
	if math.Abs(sum-c.Gain(0, 30)) > 1e-9 {
		t.Errorf("marginal sum %v != gain %v", sum, c.Gain(0, 30))
	}
}
