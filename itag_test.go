package itag_test

import (
	"context"
	"math"
	"testing"

	"itag"
	"itag/internal/rng"
)

// These tests exercise the public facade exactly as a downstream user
// would: everything below goes only through package itag.

func buildWorld(t testing.TB, n int, seed int64) (*itag.World, *itag.Population, *itag.Simulator) {
	t.Helper()
	world, err := itag.GenerateWorld(rng.New(seed), itag.WorldConfig{NumResources: n})
	if err != nil {
		t.Fatal(err)
	}
	pop, err := itag.NewPopulation(rng.New(seed+1), itag.PopulationConfig{Size: 20})
	if err != nil {
		t.Fatal(err)
	}
	return world, pop, itag.NewSimulator(world)
}

func TestFacadeQuickstartFlow(t *testing.T) {
	world, pop, sim := buildWorld(t, 20, 1)
	platform, err := itag.NewMTurkSim(itag.WorkerIDs(pop), itag.GenerativeSource(sim, pop, 2), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := itag.NewEngine(itag.EngineConfig{
		Resources: world.Dataset.Resources,
		Strategy:  itag.NewFPMU(),
		Budget:    200,
		Platform:  platform,
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if engine.Spent() != 200 {
		t.Errorf("spent = %d", engine.Spent())
	}
	if q := engine.MeanOracle(); q < 0.5 {
		t.Errorf("mean oracle quality = %v", q)
	}
	st, err := engine.Status(world.Dataset.Resources[0].ID)
	if err != nil || st.Posts == 0 {
		t.Errorf("status: %+v, %v", st, err)
	}
}

func TestFacadeStrategyParsing(t *testing.T) {
	for _, spec := range []string{"fc", "fp", "mu", "fp-mu", "random"} {
		s, err := itag.ParseStrategy(spec)
		if err != nil || s == nil {
			t.Errorf("ParseStrategy(%q): %v", spec, err)
		}
	}
	if _, err := itag.ParseStrategy("not-a-strategy"); err == nil {
		t.Error("bad spec must fail")
	}
}

func TestFacadePlannedOptimal(t *testing.T) {
	world, pop, sim := buildWorld(t, 12, 5)
	plan, gain, err := itag.PlanOptimal(sim, world.Dataset.Resources, nil, 60, itag.PlanConfig{
		Samples: 4, Population: pop, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, x := range plan {
		total += x
	}
	if total != 60 || gain <= 0 {
		t.Fatalf("plan total=%d gain=%v", total, gain)
	}
	platform, err := itag.NewMTurkSim(itag.WorkerIDs(pop), itag.GenerativeSource(sim, pop, 7), nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := itag.NewEngine(itag.EngineConfig{
		Resources: world.Dataset.Resources,
		Strategy:  itag.NewPlannedStrategy("optimal", plan),
		Budget:    60,
		Platform:  platform,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if engine.Spent() != 60 {
		t.Errorf("spent = %d", engine.Spent())
	}
}

func TestFacadeReplayFlow(t *testing.T) {
	world, pop, sim := buildWorld(t, 15, 10)
	r := rng.New(11)
	if err := sim.GenerateTrace(r, pop, itag.TraceConfig{NumPosts: 600, ChoiceTheta: 0.3}); err != nil {
		t.Fatal(err)
	}
	seedTrace, evalTrace := world.Dataset.SplitFraction(0.5)
	seedPosts := make(map[string][][]string)
	for _, p := range seedTrace {
		seedPosts[p.ResourceID] = append(seedPosts[p.ResourceID], p.Tags)
	}
	replayer := itag.NewReplayer(evalTrace)
	platform, err := itag.NewPlatform(itag.PlatformConfig{
		Workers: []string{"w1", "w2"},
		Post:    itag.ReplaySource(replayer),
		Seed:    12,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := itag.NewEngine(itag.EngineConfig{
		Resources: world.Dataset.Resources,
		SeedPosts: seedPosts,
		Strategy:  itag.FewestPosts{},
		Budget:    80,
		Platform:  platform,
		Seed:      13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if engine.Spent() == 0 || engine.Spent() > 80 {
		t.Errorf("replay spent = %d", engine.Spent())
	}
}

func TestFacadeServiceAndStore(t *testing.T) {
	svc := itag.NewService(itag.NewCatalog(itag.OpenMemoryStore()), 14)
	prov, err := svc.RegisterProvider(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	proj, err := svc.CreateProject(context.Background(), itag.ProjectSpec{
		ProviderID: prov, Budget: 50, Simulate: true, NumResources: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.StartSimulation(context.Background(), proj); err != nil {
		t.Fatal(err)
	}
	if err := svc.WaitSimulation(context.Background(), proj); err != nil {
		t.Fatal(err)
	}
	info, err := svc.Project(context.Background(), proj)
	if err != nil || info.Spent != 50 {
		t.Errorf("info: %+v, %v", info, err)
	}
}

func TestFacadeApprovalJudge(t *testing.T) {
	world, pop, sim := buildWorld(t, 10, 15)
	um := itag.NewUserManager()
	ledger := itag.NewLedger()
	platform, err := itag.NewMTurkSim(itag.WorkerIDs(pop), itag.GenerativeSource(sim, pop, 16), nil, 17)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := itag.NewEngine(itag.EngineConfig{
		Resources:  world.Dataset.Resources,
		Strategy:   itag.MostUnstable{},
		Budget:     100,
		Platform:   platform,
		Users:      um,
		Judge:      itag.LatentOverlapJudge(world, 0.5),
		Ledger:     ledger,
		PayPerTask: 0.02,
		Seed:       18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	// Honest-majority population: most posts approved and paid.
	if ledger.TotalPaid() <= 0 {
		t.Error("no incentives paid")
	}
	if math.IsNaN(engine.MeanStability()) {
		t.Error("NaN stability")
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() float64 {
		world, pop, sim := buildWorld(t, 10, 42)
		platform, err := itag.NewMTurkSim(itag.WorkerIDs(pop), itag.GenerativeSource(sim, pop, 43), nil, 44)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := itag.NewEngine(itag.EngineConfig{
			Resources: world.Dataset.Resources,
			Strategy:  itag.MostUnstable{},
			Budget:    120,
			Platform:  platform,
			Seed:      45,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.Run(); err != nil {
			t.Fatal(err)
		}
		return engine.MeanOracle()
	}
	a, b := run(), run()
	// Allocation decisions are deterministic; quality aggregation sums
	// float map values, whose iteration order varies, so require equality
	// only up to accumulation rounding.
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("same seeds must reproduce: %v vs %v", a, b)
	}
}
