GO ?= go

# Fuzz budget per target; CI smoke uses the default, nightly passes 10m.
FUZZTIME ?= 10s

.PHONY: all build test vet race race-full fuzz metrics-conformance lint check loadgen bench bench-experiments bench-contention bench-quality bench-serving bench-cluster bench-capacity bench-chaos bench-gate chaos clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Concurrent stress under the race detector (PR acceptance gate): the store
# and core suites, the interned quality hot path and its parity property
# tests (quality + rfd + vocab interner), and the HTTP layer (lock-free
# metrics scrapes vs request writers).
race:
	$(GO) test -race ./internal/store/... ./internal/core/... ./internal/quality/... ./internal/rfd/... ./internal/vocab/... ./internal/api/... ./internal/server/... ./internal/cluster/... ./internal/capacity/... ./client/...

# Everything under the race detector (nightly).
race-full:
	$(GO) test -race ./...

# Fuzz smoke over WAL recovery: corrupted segments and snapshots must never
# panic or resurrect deleted keys. CI runs FUZZTIME=10s per target on PRs
# and FUZZTIME=10m nightly.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReplay$$' -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentRecovery$$' -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run '^$$' -fuzz '^FuzzExposition$$' -fuzztime $(FUZZTIME) ./internal/api

# Prometheus exposition conformance: golden + grammar + histogram
# semantics + taxonomy/docs drift (CI metrics-conformance step).
metrics-conformance:
	$(GO) test ./internal/api -run 'Exposition|Histogram|FloatFormatting|FamiliesStableOrder|BucketIndex|Observe'
	$(GO) test ./internal/errs
	$(GO) test ./internal/server -run 'Taxonomy|FaultInjection|Corruption|SSEDropped|ScrapeRace|APIDocs'
	./scripts/test_bench_gate.sh

# Static analysis beyond vet (CI lint job; tools fetched on demand).
lint:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@2023.1.7 && staticcheck ./...
	$(GO) install golang.org/x/vuln/cmd/govulncheck@latest && govulncheck ./...

# The tier-1 verify plus vet — what CI runs.
check: vet build test

# API smoke: boot itagd on a memory store, drive the v1 batch + SSE
# surface with the SDK load generator, then SIGTERM-drain the server.
# Fails on any non-2xx, per-item error or dropped SSE event.
loadgen:
	./scripts/loadgen_smoke.sh

# Paper tables + systems benchmarks, one iteration each.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

bench-experiments:
	$(GO) run ./cmd/itag-bench -experiment all

# Sharded-store contention matrix and project-fleet pool (S3/S4).
bench-contention:
	$(GO) run ./cmd/itag-bench -experiment s3,s4

# Interned quality hot path vs map-path reference (S6), recorded to
# BENCH_quality.json; fails if the 3x gate is missed.
bench-quality:
	$(GO) run ./cmd/itag-bench -experiment s6 -record

# Ordered snapshot serving read path vs the seed iterate-filter-sort path
# plus the zero-allocation cached-serving gates (S7): allocs/op and p99 of
# a cached ResourceDetail hit through the full HTTP stack. Recorded to
# BENCH_serving.json; fails if the 3x read-path gate, the <10 allocs/op
# gate, or the 10µs p99 gate is missed.
bench-serving:
	$(GO) run ./cmd/itag-bench -experiment s7 -record

# 3-node cluster vs single node plus the kill-a-node drill (S8), recorded
# to BENCH_cluster.json; fails if the 2x gate or the drill is missed.
bench-cluster:
	$(GO) run ./cmd/itag-bench -experiment s8 -record

# Open-loop admission-control capacity at 2x the knee plus the
# kill-the-load autoscaling drill (S9), recorded to BENCH_capacity.json;
# fails if the limited path misses its SLO/goodput gates or the unlimited
# path fails to demonstrate overload collapse.
bench-capacity:
	$(GO) run ./cmd/itag-bench -experiment s9 -record

# Seeded chaos drill against the 3-node quorum cluster (S10): partition,
# disk stall, leader kill + promote. Recorded to BENCH_chaos.json; fails on
# acked-write loss, an unbounded operation, or an unrecovered degradation.
bench-chaos:
	$(GO) run ./cmd/itag-bench -experiment s10 -record

# The same S10 drill as a test under the race detector (nightly): every
# pusher, puller, breaker and quorum waiter races the injected faults.
chaos:
	$(GO) test -race -run TestS10ChaosDrill -count=1 -v ./internal/bench

# Re-check recorded BENCH_*.json artifacts against their committed gates.
bench-gate:
	./scripts/bench_gate.sh

clean:
	$(GO) clean ./...
	rm -f itag.wal
