GO ?= go

.PHONY: all build test vet race fuzz check loadgen bench bench-experiments bench-contention clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Concurrent store stress under the race detector (PR acceptance gate).
race:
	$(GO) test -race ./internal/store/... ./internal/core/...

# Short fuzz smoke over WAL recovery: corrupted segments and snapshots must
# never panic or resurrect deleted keys (CI runs the same budget).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReplay$$' -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentRecovery$$' -fuzztime 10s ./internal/store

# The tier-1 verify plus vet — what CI runs.
check: vet build test

# API smoke: boot itagd on a memory store, drive the v1 batch + SSE
# surface with the SDK load generator, then SIGTERM-drain the server.
# Fails on any non-2xx, per-item error or dropped SSE event.
loadgen:
	./scripts/loadgen_smoke.sh

# Paper tables + systems benchmarks, one iteration each.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

bench-experiments:
	$(GO) run ./cmd/itag-bench -experiment all

# Sharded-store contention matrix and project-fleet pool (S3/S4).
bench-contention:
	$(GO) run ./cmd/itag-bench -experiment s3,s4

clean:
	$(GO) clean ./...
	rm -f itag.wal
