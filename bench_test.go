// Benchmarks regenerating every reproducible table/figure of the iTag demo
// paper (see the experiment index in docs/ARCHITECTURE.md). Each
// BenchmarkE*/BenchmarkA* runs one experiment and logs its result table;
// BenchmarkS* are the systems microbenchmarks.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkE1 -benchtime=1x
// Quick sizes:      go test -bench=. -short
package itag_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"itag"
	"itag/internal/bench"
	"itag/internal/rng"
	"itag/internal/store"
)

func sizes(b *testing.B) bench.Sizes {
	if testing.Short() {
		return bench.SmallSizes()
	}
	return bench.DefaultSizes()
}

func runExperiment(b *testing.B, f func(bench.Sizes) (bench.Result, error)) {
	sz := sizes(b)
	var res bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = f(sz)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + res.Text())
}

// BenchmarkE1_TableI_StrategyComparison — paper Table I: per-strategy Δq̄
// and characteristic signatures, plus the optimal upper bound.
func BenchmarkE1_TableI_StrategyComparison(b *testing.B) { runExperiment(b, bench.E1TableI) }

// BenchmarkE2_QualityVsBudget — §IV: q(R) improvement versus budget per
// strategy.
func BenchmarkE2_QualityVsBudget(b *testing.B) { runExperiment(b, bench.E2QualityVsBudget) }

// BenchmarkE3_VsOptimal — §IV: each strategy as a fraction of the optimal
// allocation's improvement.
func BenchmarkE3_VsOptimal(b *testing.B) { runExperiment(b, bench.E3VsOptimal) }

// BenchmarkE4_ThresholdSatisfaction — Table I MU row: resources meeting a
// quality requirement τ.
func BenchmarkE4_ThresholdSatisfaction(b *testing.B) { runExperiment(b, bench.E4ThresholdSatisfaction) }

// BenchmarkE5_LowQualityReduction — Table I FP row: low-quality resource
// count versus budget; FC's popularity skew (Gini).
func BenchmarkE5_LowQualityReduction(b *testing.B) { runExperiment(b, bench.E5LowQualityReduction) }

// BenchmarkE6_MonitoringAndSwitch — Fig. 5 behaviour: live quality curve
// and mid-run FC→FP-MU strategy switch.
func BenchmarkE6_MonitoringAndSwitch(b *testing.B) { runExperiment(b, bench.E6MonitoringAndSwitch) }

// BenchmarkE7_ApprovalFiltering — §III-A approval flow: effect of judging
// + qualification gating with 30% unreliable taggers.
func BenchmarkE7_ApprovalFiltering(b *testing.B) { runExperiment(b, bench.E7ApprovalFiltering) }

// BenchmarkE8_PromoteStop — §III-A promote/stop controls.
func BenchmarkE8_PromoteStop(b *testing.B) { runExperiment(b, bench.E8PromoteStop) }

// BenchmarkE9_TraceReplay — §IV Delicious replay protocol (pre-cutoff seed,
// held-out future posts).
func BenchmarkE9_TraceReplay(b *testing.B) { runExperiment(b, bench.E9TraceReplay) }

// BenchmarkA1_StabilityWindow — ablation: MU stability window W.
func BenchmarkA1_StabilityWindow(b *testing.B) { runExperiment(b, bench.A1StabilityWindow) }

// BenchmarkA2_SwitchPoint — ablation: FP-MU switch trigger.
func BenchmarkA2_SwitchPoint(b *testing.B) { runExperiment(b, bench.A2SwitchPoint) }

// BenchmarkA3_BatchSize — ablation: Algorithm-1 batch size |Rc|.
func BenchmarkA3_BatchSize(b *testing.B) { runExperiment(b, bench.A3BatchSize) }

// BenchmarkS1_StorePostAppend — systems: durable post append throughput
// through the WAL-backed catalog.
func BenchmarkS1_StorePostAppend(b *testing.B) {
	db, err := store.Open(b.TempDir()+"/wal.jsonl", store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	cat := store.NewCatalog(db)
	now := time.Now().UTC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := store.PostRec{
			ResourceID: fmt.Sprintf("r%03d", i%256),
			TaggerID:   "t1",
			Tags:       []string{"go", "database", "tagging"},
			Time:       now,
		}
		if _, err := cat.AppendPost(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkS1_StoreRecovery — systems: WAL replay time for a 20k-record log.
func BenchmarkS1_StoreRecovery(b *testing.B) {
	path := b.TempDir() + "/wal.jsonl"
	db, err := store.Open(path, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cat := store.NewCatalog(db)
	now := time.Now().UTC()
	for i := 0; i < 20000; i++ {
		if _, err := cat.AppendPost(store.PostRec{
			ResourceID: fmt.Sprintf("r%03d", i%512),
			Tags:       []string{"a", "b"}, Time: now,
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db2, err := store.Open(path, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if db2.Count(store.TablePosts) != 20000 {
			b.Fatal("recovery incomplete")
		}
		db2.Close()
	}
}

// BenchmarkS3_StoreContention — systems: catalog throughput for every cell
// of the 1/4/16-shard × 1/8/64-tagger matrix (append-post + read-back) on
// the indexed read path, plus the seed-read-path 64-tagger cells that
// carry the committed sharding gate: 16 shards ≥ 2× the 1-shard store on
// the contended (locked-scan) configuration.
func BenchmarkS3_StoreContention(b *testing.B) { runExperiment(b, bench.S3StoreContention) }

// BenchmarkS4_ProjectFleet — systems: a fleet of simulated projects driven
// serially vs through the core.Pool worker pipeline.
func BenchmarkS4_ProjectFleet(b *testing.B) { runExperiment(b, bench.S4ProjectFleet) }

// BenchmarkS5_StoreGroupCommit — systems: sustained durable write
// throughput under concurrent committers, the group-commit WAL writer vs
// the per-record-fsync baseline. The result table is recorded to
// BENCH_store.json; the 64-committer group-commit row must be >= 2x the
// baseline (the gate fails the benchmark).
func BenchmarkS5_StoreGroupCommit(b *testing.B) {
	sz := sizes(b)
	var res bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.S5StoreGroupCommit(sz)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := res.WriteJSONFile("BENCH_store.json"); err != nil {
		b.Errorf("write BENCH_store.json: %v", err)
	}
	for _, n := range res.Notes {
		if strings.HasPrefix(n, "GATE FAILED") {
			b.Error(n)
		}
	}
	b.Log("\n" + res.Text())
}

// BenchmarkS6_QualityHotPath — systems: stability-quality evaluation
// throughput through the interned tracker path vs the retained map-path
// reference, identical pre-generated post stream (1k resources × 64
// taggers at default sizes). The result table is recorded to
// BENCH_quality.json; the interned path must reach >= 3x the map path (the
// gate fails the benchmark).
func BenchmarkS6_QualityHotPath(b *testing.B) {
	sz := sizes(b)
	var res bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.S6QualityHotPath(sz)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := res.WriteJSONFile("BENCH_quality.json"); err != nil {
		b.Errorf("write BENCH_quality.json: %v", err)
	}
	for _, fail := range res.GateFailures() {
		b.Error(fail)
	}
	b.Log("\n" + res.Text())
}

// BenchmarkS7_ServingReadPath — systems: end-to-end serving throughput of
// the mixed RequestTask/SubmitTask/ResourceDetail/Export workload through
// the ordered snapshot read path (copy-on-write table indexes + decoded-
// record cache) vs the seed iterate-filter-sort read path. The result
// table is recorded to BENCH_serving.json; the indexed path must reach
// >= 3x the seed path (the gate fails the benchmark).
func BenchmarkS7_ServingReadPath(b *testing.B) {
	sz := sizes(b)
	var res bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.S7ServingReadPath(sz)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := res.WriteJSONFile("BENCH_serving.json"); err != nil {
		b.Errorf("write BENCH_serving.json: %v", err)
	}
	for _, fail := range res.GateFailures() {
		b.Error(fail)
	}
	b.Log("\n" + res.Text())
}

// BenchmarkS2_EngineThroughput — systems: end-to-end tasks/second through
// engine + platform simulator + quality tracking.
func BenchmarkS2_EngineThroughput(b *testing.B) {
	world, err := itag.GenerateWorld(rng.New(1), itag.WorldConfig{NumResources: 200})
	if err != nil {
		b.Fatal(err)
	}
	pop, err := itag.NewPopulation(rng.New(2), itag.PopulationConfig{Size: 50})
	if err != nil {
		b.Fatal(err)
	}
	sim := itag.NewSimulator(world)
	b.ResetTimer()
	tasks := 0
	for i := 0; i < b.N; i++ {
		plat, err := itag.NewPlatform(itag.PlatformConfig{
			Workers: itag.WorkerIDs(pop),
			Post:    itag.GenerativeSource(sim, pop, int64(i)),
			Seed:    int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := itag.NewEngine(itag.EngineConfig{
			Resources: world.Dataset.Resources,
			Strategy:  itag.NewFPMU(),
			Budget:    2000,
			Batch:     32,
			Platform:  plat,
			Seed:      int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		tasks += eng.Spent()
	}
	b.ReportMetric(float64(tasks)/b.Elapsed().Seconds(), "tasks/sec")
}
