module itag

go 1.22
