#!/usr/bin/env bash
# Loadgen smoke (`make loadgen`, also a CI step): boot itagd on an
# in-memory store, run the SDK-driven load generator against it over real
# TCP, then shut the server down with SIGTERM to exercise the graceful
# drain. Fails on any non-2xx, per-item error, or dropped SSE event (the
# loadgen exits non-zero), and on an unclean server shutdown.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${ITAGD_ADDR:-127.0.0.1:18080}"
BIN_DIR="$(mktemp -d)"
trap 'rm -rf "$BIN_DIR"' EXIT

go build -o "$BIN_DIR/itagd" ./cmd/itagd
go build -o "$BIN_DIR/loadgen" ./examples/loadgen

"$BIN_DIR/itagd" -addr "$ADDR" -db "" -shards 8 -quiet &
ITAGD_PID=$!
trap 'kill "$ITAGD_PID" 2>/dev/null || true; rm -rf "$BIN_DIR"' EXIT

# The loadgen retries /healthz itself; it is the readiness probe.
"$BIN_DIR/loadgen" -addr "http://$ADDR" \
  -taggers "${LOADGEN_TAGGERS:-100}" \
  -workers "${LOADGEN_WORKERS:-4}" \
  -batches "${LOADGEN_BATCHES:-2}" \
  -batch-size "${LOADGEN_BATCH_SIZE:-1000}"

kill -TERM "$ITAGD_PID"
if ! wait "$ITAGD_PID"; then
  echo "loadgen_smoke: itagd did not shut down cleanly" >&2
  exit 1
fi
echo "loadgen_smoke: OK"
