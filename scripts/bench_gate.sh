#!/usr/bin/env sh
# bench_gate.sh — compare recorded benchmark artifacts against their
# committed acceptance gates.
#
# Each gated experiment (S3 store contention, S5 group-commit WAL, S6
# interned quality hot path, S7 serving read path, S8 cluster, S9
# admission-control capacity, S10 chaos drill) embeds its measured ratio
# and the committed minimum in its BENCH_*.json artifact.
# CI's bench-smoke job calls this script on the *committed* artifacts
# first — failing a build that commits a baseline below its own gate —
# and then reruns the experiments with `-record`, which itself exits
# non-zero if any freshly measured ratio regresses below the gate. The
# comparator is `itag-bench -verify-gates`, so no jq or python dependency
# is needed.
#
# In no-argument mode the canonical artifact set is REQUIRED: a missing
# file fails the gate instead of silently shrinking the set (a glob that
# matches nothing, or one deleted artifact, must never read as a pass).
#
# Usage: scripts/bench_gate.sh [BENCH_file.json ...]
#   BENCH_GATE_DIR overrides the artifact directory (default: repo root;
#   used by scripts/test_bench_gate.sh).
set -eu
ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
DIR="${BENCH_GATE_DIR:-$ROOT}"

if [ "$#" -eq 0 ]; then
  set -- BENCH_capacity.json BENCH_chaos.json BENCH_cluster.json BENCH_contention.json BENCH_quality.json BENCH_serving.json BENCH_store.json
fi

missing=0
abs=""
for f in "$@"; do
  case "$f" in
    /*) p="$f" ;;
    *) p="$DIR/$f" ;;
  esac
  if [ ! -f "$p" ]; then
    echo "bench_gate.sh: missing artifact: $f (run: go run ./cmd/itag-bench -experiment s3,s5,s6,s7,s8,s9,s10 -record)" >&2
    missing=$((missing + 1))
    continue
  fi
  abs="$abs $p"
done
if [ "$missing" -gt 0 ]; then
  exit 2
fi

cd "$ROOT"
# shellcheck disable=SC2086
exec go run ./cmd/itag-bench -verify-gates $abs
