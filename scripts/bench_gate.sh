#!/usr/bin/env sh
# bench_gate.sh — compare recorded benchmark artifacts against their
# committed acceptance gates.
#
# Each gated experiment (S3 store contention, S5 group-commit WAL, S6
# interned quality hot path, S7 serving read path) embeds its measured
# speedup ratio and the committed minimum in its BENCH_*.json artifact.
# CI's bench-smoke job calls this script on the *committed* artifacts
# first — failing a build that commits a baseline below its own gate —
# and then reruns the experiments with `-record`, which itself exits
# non-zero if any freshly measured ratio regresses below the gate. The comparator is
# `itag-bench -verify-gates`, so no jq or python dependency is needed.
#
# Usage: scripts/bench_gate.sh [BENCH_file.json ...]   (default: BENCH_*.json)
set -eu
cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
  set -- BENCH_*.json
fi
if [ ! -e "$1" ]; then
  echo "bench_gate.sh: no BENCH_*.json artifacts found (run: go run ./cmd/itag-bench -experiment s3,s5,s6,s7 -record)" >&2
  exit 2
fi

exec go run ./cmd/itag-bench -verify-gates "$@"
