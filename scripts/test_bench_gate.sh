#!/usr/bin/env sh
# test_bench_gate.sh — regression tests for the bench gate itself.
#
# The gate once passed silently when artifacts were missing or carried no
# Gates key; these cases pin the strict behavior:
#   1. the committed canonical artifacts pass,
#   2. a missing artifact fails (exit 2),
#   3. an artifact with no Gates key fails (exit 1),
#   4. an artifact whose ratio is below its gate fails (exit 1),
#   5. the S8 cluster artifact is part of the canonical set: a directory
#      holding every artifact but BENCH_cluster.json fails (exit 2),
#   6. the S9 capacity artifact is part of the canonical set: a directory
#      holding every artifact but BENCH_capacity.json fails (exit 2),
#   7. the serving artifact must gate allocations: BENCH_serving.json
#      without the cached_detail_allocs_under_10 gate is a test failure,
#      and an allocs/op regression (ratio below min) fails (exit 1),
#   8. the S10 chaos artifact is part of the canonical set: a directory
#      holding every artifact but BENCH_chaos.json fails (exit 2), and the
#      committed artifact must carry the zero-acked-write-loss gate.
#
# Run from anywhere: scripts/test_bench_gate.sh
set -eu
ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
GATE="$ROOT/scripts/bench_gate.sh"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "test_bench_gate.sh: FAIL: $1" >&2
  exit 1
}

# 1. Committed artifacts pass.
"$GATE" >/dev/null 2>&1 || fail "committed artifacts did not pass the gate"

# 2. Missing artifact fails with exit 2.
set +e
BENCH_GATE_DIR="$TMP" "$GATE" >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "missing artifacts exited $rc, want 2"

# 3. No Gates key fails with exit 1.
printf '{"id":"s7-serving","gates":[]}\n' > "$TMP/BENCH_nogates.json"
set +e
"$GATE" "$TMP/BENCH_nogates.json" >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 1 ] || fail "ungated artifact exited $rc, want 1"

# 4. Ratio below the committed minimum fails with exit 1.
printf '{"id":"s7-serving","gates":[{"name":"serving","ratio":0.5,"min":1.1}]}\n' > "$TMP/BENCH_below.json"
set +e
"$GATE" "$TMP/BENCH_below.json" >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 1 ] || fail "below-gate artifact exited $rc, want 1"

# 5. The cluster artifact is required in no-argument mode.
mkdir "$TMP/nocluster"
for f in BENCH_capacity.json BENCH_chaos.json BENCH_contention.json BENCH_quality.json BENCH_serving.json BENCH_store.json; do
  cp "$ROOT/$f" "$TMP/nocluster/$f"
done
set +e
BENCH_GATE_DIR="$TMP/nocluster" "$GATE" >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "canonical set without BENCH_cluster.json exited $rc, want 2"

# 6. The capacity artifact is required in no-argument mode.
mkdir "$TMP/nocapacity"
for f in BENCH_chaos.json BENCH_cluster.json BENCH_contention.json BENCH_quality.json BENCH_serving.json BENCH_store.json; do
  cp "$ROOT/$f" "$TMP/nocapacity/$f"
done
set +e
BENCH_GATE_DIR="$TMP/nocapacity" "$GATE" >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "canonical set without BENCH_capacity.json exited $rc, want 2"

# 7. The serving artifact carries the allocs/op gate, and a regression
#    below its committed minimum fails.
grep -q '"name": *"cached_detail_allocs_under_10"' "$ROOT/BENCH_serving.json" \
  || fail "BENCH_serving.json lost the cached_detail_allocs_under_10 gate"
sed '/"name": *"cached_detail_allocs_under_10"/{n
s/"ratio": *[0-9.eE+-]*/"ratio": 0.2/
}' "$ROOT/BENCH_serving.json" > "$TMP/BENCH_allocregress.json"
set +e
"$GATE" "$TMP/BENCH_allocregress.json" >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 1 ] || fail "allocs/op regression exited $rc, want 1"

# 8. The chaos artifact is required in no-argument mode and must carry the
#    zero-acked-write-loss gate.
mkdir "$TMP/nochaos"
for f in BENCH_capacity.json BENCH_cluster.json BENCH_contention.json BENCH_quality.json BENCH_serving.json BENCH_store.json; do
  cp "$ROOT/$f" "$TMP/nochaos/$f"
done
set +e
BENCH_GATE_DIR="$TMP/nochaos" "$GATE" >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "canonical set without BENCH_chaos.json exited $rc, want 2"
grep -q '"name": *"quorum_zero_acked_write_loss"' "$ROOT/BENCH_chaos.json" \
  || fail "BENCH_chaos.json lost the quorum_zero_acked_write_loss gate"

echo "test_bench_gate.sh: ok"
