// Package itag is a Go implementation of iTag, the incentive-based tagging
// system of Lei, Yang, Mo, Maniu and Cheng (ICDE 2014), together with the
// simulation substrate needed to reproduce the paper's evaluation.
//
// iTag sits between resource providers and crowdsourcing marketplaces: a
// provider uploads resources with poor or missing tags, sets a budget of
// tagging tasks, and iTag allocates those tasks to taggers so that the
// overall tagging quality — defined on the stability of each resource's
// tag relative-frequency distribution — improves as much as possible.
//
// The package re-exports the system's public surface:
//
//   - Engine / EngineConfig: the Algorithm-1 allocation loop with live
//     monitoring, promote/stop controls and mid-run strategy switching.
//   - Service / ProjectSpec: the manager layer (projects, users, approvals,
//     persistence) that the HTTP server and CLIs sit on.
//   - Strategy constructors and ParseStrategy: FC, FP, MU, FP-MU, and the
//     baselines, plus the optimal allocators.
//   - World generation, tagger simulation, and crowdsourcing-platform
//     simulators for experimentation without a marketplace account.
//
// # Quick start
//
//	world, _ := itag.GenerateWorld(rand.New(rand.NewSource(1)), itag.WorldConfig{NumResources: 50})
//	pop, _ := itag.NewPopulation(rand.New(rand.NewSource(2)), itag.PopulationConfig{Size: 30})
//	sim := itag.NewSimulator(world)
//	platform, _ := itag.NewMTurkSim(itag.WorkerIDs(pop), itag.GenerativeSource(sim, pop, 3), nil, 4)
//	engine, _ := itag.NewEngine(itag.EngineConfig{
//		Resources: world.Dataset.Resources,
//		Strategy:  itag.NewFPMU(),
//		Budget:    500,
//		Platform:  platform,
//	})
//	_ = engine.Run()
//	fmt.Println(engine.MeanStability())
//
// See examples/ for complete programs and docs/ARCHITECTURE.md for the
// system design and experiment index.
package itag

import (
	"math/rand"

	"itag/internal/core"
	"itag/internal/crowd"
	"itag/internal/dataset"
	"itag/internal/quality"
	"itag/internal/store"
	"itag/internal/strategy"
	"itag/internal/taggersim"
	"itag/internal/users"
	"itag/internal/vocab"
)

// Core engine and service surface.
type (
	// Engine runs the Algorithm-1 allocation loop for one project.
	Engine = core.Engine
	// EngineConfig parameterizes an Engine.
	EngineConfig = core.Config
	// Monitor is a run's telemetry (quality curves, events).
	Monitor = core.Monitor
	// ResourceStatus is a per-resource snapshot.
	ResourceStatus = core.ResourceStatus
	// Service composes the persistent managers (projects, users, posts).
	Service = core.Service
	// ProjectSpec describes a new project.
	ProjectSpec = core.ProjectSpec
	// ProjectInfo is a project row with live stats.
	ProjectInfo = core.ProjectInfo
	// Pool drives many engines concurrently with a fixed set of step
	// workers (the task-assignment pipeline).
	Pool = core.Pool
	// Judge reviews completed posts (approval flow).
	Judge = core.Judge
	// PlanConfig parameterizes optimal-allocation gain estimation.
	PlanConfig = core.PlanConfig
)

// Strategy surface.
type (
	// Strategy selects which resources receive the next tasks.
	Strategy = strategy.Strategy
	// StrategyView is the snapshot strategies choose from.
	StrategyView = strategy.View
	// FreeChoice is the FC strategy.
	FreeChoice = strategy.FreeChoice
	// FewestPosts is the FP strategy.
	FewestPosts = strategy.FewestPosts
	// MostUnstable is the MU strategy.
	MostUnstable = strategy.MostUnstable
	// FPMU is the hybrid FP-MU strategy.
	FPMU = strategy.FPMU
)

// Data model surface.
type (
	// Resource is one taggable item.
	Resource = dataset.Resource
	// Post is one tagging operation.
	Post = dataset.Post
	// Dataset is resources plus a time-ordered trace.
	Dataset = dataset.Dataset
	// World bundles a dataset with its generated vocabulary.
	World = dataset.World
	// WorldConfig parameterizes world generation.
	WorldConfig = dataset.GeneratorConfig
)

// Simulation surface.
type (
	// Population is a set of simulated tagger profiles.
	Population = taggersim.Population
	// PopulationConfig parameterizes population generation.
	PopulationConfig = taggersim.PopulationConfig
	// TaggerProfile describes one simulated tagger.
	TaggerProfile = taggersim.Profile
	// Simulator produces posts from the behaviour model.
	Simulator = taggersim.Simulator
	// TraceConfig parameterizes free-choice trace generation.
	TraceConfig = taggersim.TraceConfig
	// Replayer serves held-out trace posts.
	Replayer = taggersim.Replayer
	// Platform is the crowdsourcing-marketplace abstraction.
	Platform = crowd.Platform
	// PlatformConfig parameterizes the marketplace simulator.
	PlatformConfig = crowd.SimConfig
	// Ledger tracks incentive payments.
	Ledger = crowd.Ledger
	// UserManager tracks two-sided approval rates.
	UserManager = users.Manager
)

// Quality surface.
type (
	// QualityConfig parameterizes the stability metric.
	QualityConfig = quality.Config
	// QualityMetric selects the rfd similarity measure.
	QualityMetric = quality.Metric
	// QualityTracker maintains one resource's quality series (interned hot
	// path; see TagInterner).
	QualityTracker = quality.Tracker
	// TagInterner maps tag strings to dense IDs; share one across engines
	// (EngineConfig.Interner) so their trackers index a common vocabulary.
	TagInterner = vocab.Interner
)

// NewTagInterner returns an empty concurrency-safe tag interner.
func NewTagInterner() *TagInterner { return vocab.NewInterner() }

// Storage surface.
type (
	// Store is the storage contract the manager layer runs over; backends
	// are the WAL-backed DB and the hash-partitioned ShardedStore.
	Store = store.Store
	// ShardedStore partitions the key space across N single-lock shards.
	ShardedStore = store.Sharded
	// Catalog is the typed schema layer over Store.
	Catalog = store.Catalog
)

// NewEngine builds an allocation engine. See EngineConfig for knobs.
func NewEngine(cfg EngineConfig) (*Engine, error) { return core.New(cfg) }

// RunEngines drives many engines to completion on a shared worker pool,
// returning a slice of per-engine errors parallel to the input.
func RunEngines(engines []*Engine, workers int) []error {
	return core.RunEngines(engines, workers)
}

// NewService builds the manager layer over a catalog.
func NewService(cat *Catalog, seed int64) *Service { return core.NewService(cat, seed) }

// OpenStore opens (or creates) a WAL-backed store at path.
func OpenStore(path string) (Store, error) { return store.Open(path, store.Options{}) }

// OpenMemoryStore returns a volatile in-memory store.
func OpenMemoryStore() Store { return store.OpenMemory() }

// NewShardedStore returns a volatile in-memory store partitioned across n
// single-lock shards (keys routed by their first path segment).
func NewShardedStore(n int) *ShardedStore { return store.NewSharded(n) }

// OpenShardedStore opens (or creates) a durable sharded store: n WAL shards
// inside dir.
func OpenShardedStore(dir string, n int) (*ShardedStore, error) {
	return store.OpenSharded(dir, n, store.Options{})
}

// NewCatalog wraps a store backend with the typed iTag schemas.
func NewCatalog(db Store) *Catalog { return store.NewCatalog(db) }

// ParseStrategy resolves a strategy spec such as "fp-mu:frac=0.5,budget=1000".
func ParseStrategy(spec string) (Strategy, error) { return strategy.Parse(spec) }

// NewFPMU returns the hybrid strategy with its default trigger.
func NewFPMU() *FPMU { return strategy.NewFPMU() }

// GenerateWorld builds a synthetic Delicious-like world.
func GenerateWorld(r *rand.Rand, cfg WorldConfig) (*World, error) { return dataset.Generate(r, cfg) }

// NewPopulation generates a simulated tagger population.
func NewPopulation(r *rand.Rand, cfg PopulationConfig) (*Population, error) {
	return taggersim.NewPopulation(r, cfg)
}

// NewSimulator builds a post simulator over a world.
func NewSimulator(world *World) *Simulator { return taggersim.NewSimulator(world) }

// NewReplayer groups held-out posts for trace replay.
func NewReplayer(eval []Post) *Replayer { return taggersim.NewReplayer(eval) }

// NewUserManager returns an empty user manager.
func NewUserManager() *UserManager { return users.NewManager() }

// NewLedger returns an empty payment ledger.
func NewLedger() *Ledger { return crowd.NewLedger() }

// NewMTurkSim builds a marketplace simulator with MTurk-like defaults.
func NewMTurkSim(workers []string, post crowd.PostFunc, qualify crowd.QualifyFunc, seed int64) (Platform, error) {
	return crowd.NewMTurkSim(workers, post, qualify, seed)
}

// NewSocialSim builds a marketplace simulator with social-network defaults.
func NewSocialSim(workers []string, post crowd.PostFunc, qualify crowd.QualifyFunc, seed int64) (Platform, error) {
	return crowd.NewSocialSim(workers, post, qualify, seed)
}

// NewPlatform builds a marketplace simulator from an explicit config.
func NewPlatform(cfg PlatformConfig) (Platform, error) { return crowd.NewSim(cfg) }

// GenerativeSource produces worker posts from the behaviour model.
func GenerativeSource(sim *Simulator, pop *Population, seed int64) crowd.PostFunc {
	return core.GenerativeSource(sim, pop, seed)
}

// ReplaySource produces worker posts from a trace replayer.
func ReplaySource(rp *Replayer) crowd.PostFunc { return core.ReplaySource(rp) }

// WorkerIDs lists a population's profile IDs for platform construction.
func WorkerIDs(pop *Population) []string { return core.WorkerIDs(pop) }

// PlanOptimal computes the optimal allocation via Monte-Carlo gain
// estimation and greedy exact allocation.
func PlanOptimal(sim *Simulator, resources []Resource, seedPosts map[string][][]string,
	budget int, cfg PlanConfig) ([]int, float64, error) {
	return core.PlanOptimal(sim, resources, seedPosts, budget, cfg)
}

// NewPlannedStrategy wraps a precomputed allocation as a Strategy.
func NewPlannedStrategy(name string, plan []int) Strategy { return strategy.NewPlanned(name, plan) }

// LatentOverlapJudge approves posts whose tags overlap the resource's
// latent distribution by at least minOverlap (simulated provider review).
func LatentOverlapJudge(world *World, minOverlap float64) Judge {
	return core.LatentOverlapJudge(world, minOverlap)
}
