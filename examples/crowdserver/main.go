// Crowd server: the full system end-to-end over HTTP — itagd's API driven
// by a provider client and simulated audience taggers, mirroring the demo's
// audience-participation mode (paper §IV).
//
// The program starts the HTTP server in-process, registers a provider and
// three taggers, creates two projects (one simulated MTurk run, one manual
// audience project), drives both to completion through the REST API, and
// prints the provider's dashboard.
//
//	go run ./examples/crowdserver
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"itag"
	"itag/internal/server"
)

func main() {
	svc := itag.NewService(itag.NewCatalog(itag.OpenMemoryStore()), 42)
	ts := httptest.NewServer(server.New(svc, nil))
	defer ts.Close()
	c := &client{base: ts.URL}

	// Provider and taggers register.
	provider := c.post("/api/providers", obj{"name": "alice"})["id"].(string)
	var taggers []string
	for _, name := range []string{"bob", "carol", "dave"} {
		taggers = append(taggers, c.post("/api/taggers", obj{"name": name})["id"].(string))
	}
	fmt.Printf("registered provider %s and %d audience taggers\n\n", provider, len(taggers))

	// Project 1: simulated crowdsourcing (MTurk-like) run.
	simProj := c.post("/api/projects", obj{
		"provider_id": provider, "name": "web-urls", "budget": 300,
		"pay_per_task": 0.05, "strategy": "fp-mu", "simulate": true, "num_resources": 30,
	})["id"].(string)
	c.post("/api/projects/"+simProj+"/start", nil)
	waitDone(c, simProj)
	info := c.get("/api/projects/" + simProj)
	fmt.Printf("simulated project %s: spent %v tasks, mean stability %.4f\n",
		simProj, info["spent"], info["mean_stability"])

	// Project 2: manual audience tagging of uploaded resources.
	manProj := c.post("/api/projects", obj{
		"provider_id": provider, "name": "audience", "budget": 6, "pay_per_task": 0.25,
		"strategy": "fp",
		"resources": []obj{
			{"id": "paper-1", "kind": "paper", "name": "iTag (ICDE'14)"},
			{"id": "paper-2", "kind": "paper", "name": "On Incentive-Based Tagging (ICDE'13)"},
		},
	})["id"].(string)

	posts := map[string][][]string{
		"paper-1": {{"crowdsourcing", "tagging", "incentives"}, {"tagging", "demo", "icde"}, {"crowdsourcing", "tagging"}},
		"paper-2": {{"tagging", "quality", "budget"}, {"allocation", "tagging", "quality"}, {"quality", "stability"}},
	}
	for i := 0; i < 6; i++ {
		tagger := taggers[i%len(taggers)]
		task := c.post("/api/projects/"+manProj+"/tasks", obj{"tagger_id": tagger})
		rid := task["resource_id"].(string)
		pick := posts[rid][0]
		posts[rid] = posts[rid][1:]
		c.post(fmt.Sprintf("/api/projects/%s/tasks/%s/submit", manProj, task["id"]), obj{"tags": pick})
		// The provider reviews and approves the post; payment flows.
		c.post(fmt.Sprintf("/api/projects/%s/posts/%s/%d/judge", manProj, rid, 3-len(posts[rid])), obj{"approved": true})
	}

	fmt.Println("\naudience project export:")
	var rows []obj
	c.getInto("/api/projects/"+manProj+"/export", &rows)
	for _, row := range rows {
		fmt.Printf("  %-8s posts=%v stability=%.3f tags=", row["id"], row["posts"], row["stability"])
		if tags, ok := row["top_tags"].([]any); ok {
			for _, tg := range tags {
				fmt.Printf("%s ", tg.(map[string]any)["tag"])
			}
		}
		fmt.Println()
	}

	// Tagger earnings after approvals.
	fmt.Println("\ntagger earnings:")
	for _, id := range taggers {
		u := c.get("/api/users/" + id)
		fmt.Printf("  %-12s rate=%.2f earned=$%.2f\n", u["name"], u["approval_rate"], u["earned_total"])
	}
}

type obj = map[string]any

type client struct{ base string }

func (c *client) post(path string, body any) obj {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			log.Fatal(err)
		}
	}
	resp, err := http.Post(c.base+path, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out obj
	_ = json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode >= 400 {
		log.Fatalf("POST %s: %d %v", path, resp.StatusCode, out)
	}
	return out
}

func (c *client) get(path string) obj {
	var out obj
	c.getInto(path, &out)
	return out
}

func (c *client) getInto(path string, out any) {
	resp, err := http.Get(c.base + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		log.Fatalf("GET %s: %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func waitDone(c *client, projectID string) {
	for i := 0; i < 1000; i++ {
		info := c.get("/api/projects/" + projectID)
		if running, _ := info["running"].(bool); !running {
			if spent, _ := info["spent"].(float64); spent > 0 {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("project did not finish")
}
