// Quickstart: the smallest complete iTag run.
//
// It generates a synthetic world of 50 under-tagged resources, a pool of 30
// simulated taggers, and spends a budget of 500 tagging tasks with the
// FP-MU hybrid strategy, printing the quality improvement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"itag"
	"itag/internal/rng"
)

func main() {
	world, err := itag.GenerateWorld(rng.New(1), itag.WorldConfig{NumResources: 50})
	if err != nil {
		log.Fatal(err)
	}
	pop, err := itag.NewPopulation(rng.New(2), itag.PopulationConfig{Size: 30})
	if err != nil {
		log.Fatal(err)
	}
	sim := itag.NewSimulator(world)

	// A simulated MTurk marketplace: workers are the population's taggers.
	platform, err := itag.NewMTurkSim(
		itag.WorkerIDs(pop),
		itag.GenerativeSource(sim, pop, 3),
		nil, // no qualification gate
		4,
	)
	if err != nil {
		log.Fatal(err)
	}

	engine, err := itag.NewEngine(itag.EngineConfig{
		Resources: world.Dataset.Resources,
		Strategy:  itag.NewFPMU(), // FP first, then MU (Table I's best)
		Budget:    500,
		Platform:  platform,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}

	before := engine.MeanOracle()
	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("strategy:          %s\n", engine.StrategyName())
	fmt.Printf("tasks spent:       %d\n", engine.Spent())
	fmt.Printf("mean quality:      %.4f -> %.4f (oracle)\n", before, engine.MeanOracle())
	fmt.Printf("mean stability:    %.4f (the paper's online q(R))\n", engine.MeanStability())

	// Inspect one resource the way the provider UI would (Fig. 6).
	st, err := engine.Status(world.Dataset.Resources[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresource %s: %d posts, stability %.3f, top tags:\n", st.ID, st.Posts, st.Stability)
	for _, tf := range st.TopTags {
		if tf.Count < 2 {
			continue
		}
		fmt.Printf("  %-20s x%d (%.2f)\n", tf.Tag, tf.Count, tf.Freq)
	}
}
