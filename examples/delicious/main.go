// Delicious replay: the demo's §IV protocol on a synthetic Delicious-like
// trace.
//
// A free-choice trace of 8000 posts over 200 resources is generated; the
// first 30% (by time) seeds the provider's data — exactly the paper's
// "data before February 1st 2007" role — and the remaining 70% is the
// held-out future. Each strategy then spends the same budget, drawing a
// chosen resource's next real post from its held-out future, and the
// strategies are compared on quality improvement.
//
//	go run ./examples/delicious
package main

import (
	"fmt"
	"log"

	"itag"
	"itag/internal/rng"
)

const (
	numResources = 200
	tracePosts   = 8000
	budget       = 600
)

func main() {
	// Build the world and its free-choice trace.
	r := rng.New(2014)
	world, err := itag.GenerateWorld(r, itag.WorldConfig{NumResources: numResources})
	if err != nil {
		log.Fatal(err)
	}
	pop, err := itag.NewPopulation(r, itag.PopulationConfig{Size: 80, UnreliableFraction: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	sim := itag.NewSimulator(world)
	// Mild preferential attachment so the held-out future covers most
	// resources (a heavily skewed future forces all strategies into the
	// same allocation — budget can only go where future posts exist).
	if err := sim.GenerateTrace(r, pop, itag.TraceConfig{NumPosts: tracePosts, ChoiceTheta: 0.3}); err != nil {
		log.Fatal(err)
	}

	// Temporal split: pre-cutoff posts are the provider's data.
	seedTrace, evalTrace := world.Dataset.SplitFraction(0.3)
	seedPosts := make(map[string][][]string)
	for _, p := range seedTrace {
		seedPosts[p.ResourceID] = append(seedPosts[p.ResourceID], p.Tags)
	}
	fmt.Printf("trace: %d posts; seed %d, held-out %d\n\n", tracePosts, len(seedTrace), len(evalTrace))

	fmt.Printf("%-12s  %-10s  %-10s  %-6s\n", "strategy", "dq_mean", "q_after", "spent")
	for _, spec := range []string{"fc", "fp", "mu", "fp-mu:frac=0.5,budget=600"} {
		strat, err := itag.ParseStrategy(spec)
		if err != nil {
			log.Fatal(err)
		}
		// Fresh replayer per strategy: everyone sees the same future.
		replayer := itag.NewReplayer(evalTrace)
		platform, err := itag.NewPlatform(itag.PlatformConfig{
			Workers: workerNames(16),
			Post:    itag.ReplaySource(replayer),
			Seed:    7,
		})
		if err != nil {
			log.Fatal(err)
		}
		engine, err := itag.NewEngine(itag.EngineConfig{
			Resources: world.Dataset.Resources,
			SeedPosts: seedPosts,
			Strategy:  strat,
			Budget:    budget,
			Platform:  platform,
			Seed:      8,
		})
		if err != nil {
			log.Fatal(err)
		}
		before := engine.MeanOracle()
		if err := engine.Run(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %-10.4f  %-10.4f  %-6d\n",
			strat.Name(), engine.MeanOracle()-before, engine.MeanOracle(), engine.Spent())
	}
	fmt.Println("\nExpected shape (Table I): fc weakest; fp-mu strongest or tied with fp;")
	fmt.Println("spent < budget is normal under replay (a resource's future can run out).")
}

func workerNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("replayer-%02d", i)
	}
	return out
}
