// Load generator: drives N concurrent simulated taggers through the v1
// batch endpoints with the Go SDK — the "heavy traffic" smoke for the
// versioned API (ISSUE 2 / ROADMAP "millions of users" direction).
//
// Two phases:
//
//  1. Manual fan-out: register a tagger fleet with one taggers:batch
//     call, then hammer a manual project with -workers concurrent
//     tasks:batch calls (-batches × -batch-size request+submit pairs
//     each) while an SSE stream watches the quality ticks.
//  2. Simulated run: start a simulated project and follow its SSE stream
//     until the finished event.
//
// The process exits non-zero on any unexpected non-2xx response, any
// per-item error, any dropped SSE event, or a missing tick/finished
// event — making it usable as a CI gate (`make loadgen`).
//
//	go run ./examples/loadgen                       # self-hosted in-process server
//	go run ./examples/loadgen -addr http://host:8080   # against a running itagd
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"itag/client"
	"itag/internal/core"
	"itag/internal/server"
	"itag/internal/store"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running itagd; empty starts an in-process server")
	taggers := flag.Int("taggers", 200, "tagger fleet size (one taggers:batch call)")
	workers := flag.Int("workers", 4, "concurrent batch writers")
	batches := flag.Int("batches", 2, "tasks:batch calls per worker")
	batchSize := flag.Int("batch-size", 1000, "request+submit pairs per batch call")
	resources := flag.Int("resources", 40, "uploaded resources in the manual project")
	simBudget := flag.Int("sim-budget", 200, "budget of the simulated SSE-watched project")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("loadgen ")

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	base := *addr
	if base == "" {
		svc := core.NewService(store.NewCatalog(store.OpenMemory()), 1)
		ts := httptest.NewServer(server.New(svc, nil))
		defer ts.Close()
		defer svc.Close()
		base = ts.URL
		log.Printf("in-process server at %s", base)
	}
	c := client.New(base, nil)

	if err := waitHealthy(ctx, c); err != nil {
		fail("server never became healthy: %v", err)
	}

	failures := 0
	failures += manualPhase(ctx, c, *taggers, *workers, *batches, *batchSize, *resources)
	failures += simulatedPhase(ctx, c, *simBudget)

	if failures > 0 {
		fail("%d check(s) failed", failures)
	}
	log.Print("PASS")
}

func fail(format string, args ...any) {
	log.Printf("FAIL: "+format, args...)
	os.Exit(1)
}

func waitHealthy(ctx context.Context, c *client.Client) error {
	var err error
	for i := 0; i < 100; i++ {
		if err = c.Health(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
	return err
}

// manualPhase returns the number of failed checks (0 = clean).
func manualPhase(ctx context.Context, c *client.Client, taggers, workers, batches, batchSize, resources int) int {
	prov, err := c.RegisterProvider(ctx, "loadgen-provider")
	if err != nil {
		fail("register provider: %v", err)
	}

	names := make([]string, taggers)
	for i := range names {
		names[i] = fmt.Sprintf("loadgen-tagger-%04d", i)
	}
	reg, err := c.RegisterTaggers(ctx, names)
	if err != nil || reg.Failed > 0 {
		fail("batch tagger registration: %+v, %v", reg, err)
	}
	ids := make([]string, len(reg.Results))
	for i, r := range reg.Results {
		ids[i] = r.ID
	}
	log.Printf("registered %d taggers in one round-trip", len(ids))

	uploaded := make([]client.UploadedResource, resources)
	for i := range uploaded {
		uploaded[i] = client.UploadedResource{
			ID: fmt.Sprintf("res-%04d", i), Kind: "url", Name: fmt.Sprintf("r%d.example.com", i),
		}
	}
	total := workers * batches * batchSize
	proj, err := c.CreateProject(ctx, client.CreateProjectReq{
		ProviderID: prov, Name: "loadgen-manual", Budget: total, PayPerTask: 0.01,
		Strategy: "fp", Resources: uploaded,
	})
	if err != nil {
		fail("create manual project: %v", err)
	}

	stream, err := c.StreamEvents(ctx, proj)
	if err != nil {
		fail("subscribe SSE: %v", err)
	}
	var ticks, dropped atomic.Int64
	sseDone := make(chan struct{})
	go func() {
		defer close(sseDone)
		for ev := range stream.C {
			switch ev.Type {
			case client.EventTick:
				ticks.Add(1)
			case client.EventDropped:
				dropped.Add(1)
			}
		}
	}()

	var itemErrors atomic.Int64
	var submitted atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				items := make([]client.BatchTaskItem, batchSize)
				for i := range items {
					items[i] = client.BatchTaskItem{
						TaggerID: ids[(w*batches*batchSize+b*batchSize+i)%len(ids)],
						Tags:     []string{"go", fmt.Sprintf("w%d", w), fmt.Sprintf("t%d", i%11)},
					}
				}
				resp, err := c.BatchTasks(ctx, proj, items)
				if err != nil {
					log.Printf("worker %d batch %d: %v", w, b, err)
					itemErrors.Add(int64(batchSize))
					continue
				}
				itemErrors.Add(int64(resp.Failed))
				submitted.Add(int64(resp.OK))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Give the stream a beat to deliver the trailing ticks, then close.
	time.Sleep(200 * time.Millisecond)
	stream.Close()
	<-sseDone

	rate := float64(submitted.Load()) / elapsed.Seconds()
	log.Printf("manual phase: %d/%d pairs submitted in %s (%.0f tasks/s), %d ticks streamed",
		submitted.Load(), total, elapsed.Round(time.Millisecond), rate, ticks.Load())

	failures := 0
	if got := submitted.Load(); got != int64(total) {
		log.Printf("FAIL-CHECK: submitted %d of %d pairs", got, total)
		failures++
	}
	if errs := itemErrors.Load(); errs > 0 {
		log.Printf("FAIL-CHECK: %d per-item errors", errs)
		failures++
	}
	if d := dropped.Load(); d > 0 {
		log.Printf("FAIL-CHECK: %d dropped SSE events", d)
		failures++
	}
	if ticks.Load() == 0 {
		log.Print("FAIL-CHECK: no SSE ticks during the manual burst")
		failures++
	}
	if err := stream.Err(); err != nil {
		log.Printf("FAIL-CHECK: SSE stream error: %v", err)
		failures++
	}
	return failures
}

// simulatedPhase returns the number of failed checks (0 = clean).
func simulatedPhase(ctx context.Context, c *client.Client, budget int) int {
	prov, err := c.RegisterProvider(ctx, "loadgen-sim-provider")
	if err != nil {
		fail("register provider: %v", err)
	}
	proj, err := c.CreateProject(ctx, client.CreateProjectReq{
		ProviderID: prov, Name: "loadgen-sim", Budget: budget, PayPerTask: 0.05,
		Simulate: true, NumResources: 20,
	})
	if err != nil {
		fail("create simulated project: %v", err)
	}
	stream, err := c.StreamEvents(ctx, proj)
	if err != nil {
		fail("subscribe SSE: %v", err)
	}
	defer stream.Close()
	if err := c.StartProject(ctx, proj); err != nil {
		fail("start project: %v", err)
	}

	var ticks, dropped int
	var finished *client.Finished
	for ev := range stream.C {
		switch ev.Type {
		case client.EventTick:
			ticks++
		case client.EventDropped:
			dropped++
		case client.EventFinished:
			if f, ok := ev.Finished(); ok {
				finished = &f
			}
		}
	}

	failures := 0
	if err := stream.Err(); err != nil {
		log.Printf("FAIL-CHECK: simulated SSE stream error: %v", err)
		failures++
	}
	if ticks == 0 {
		log.Print("FAIL-CHECK: no quality ticks during the simulated run")
		failures++
	}
	if dropped > 0 {
		log.Printf("FAIL-CHECK: %d dropped SSE events in the simulated run", dropped)
		failures++
	}
	switch {
	case finished == nil:
		log.Print("FAIL-CHECK: simulated run never finished")
		failures++
	case finished.Error != "":
		log.Printf("FAIL-CHECK: simulated run failed: %s", finished.Error)
		failures++
	case finished.Spent != budget:
		log.Printf("FAIL-CHECK: simulated run spent %d of %d", finished.Spent, budget)
		failures++
	}
	log.Printf("simulated phase: %d ticks, finished=%+v", ticks, finished)
	return failures
}
