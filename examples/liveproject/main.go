// Live project: the provider-steering workflow of paper §III-A / Fig. 5.
//
// A project starts on Free Choice (the do-nothing default: taggers pick
// popular resources). Watching the live quality curve, the provider
// promotes the worst resources, stops the already-good ones, and switches
// the strategy to FP-MU for the second half of the budget — then compares
// the curve against a hands-off FC run of the same budget.
//
//	go run ./examples/liveproject
package main

import (
	"fmt"
	"log"
	"sort"

	"itag"
	"itag/internal/rng"
)

const (
	numResources = 100
	budget       = 1000
)

func main() {
	handsOff := run(false)
	steered := run(true)

	fmt.Printf("%-28s  %-10s\n", "run", "q_after (oracle)")
	fmt.Printf("%-28s  %-10.4f\n", "hands-off FC", handsOff.MeanOracle())
	fmt.Printf("%-28s  %-10.4f\n", "steered (promote/stop/switch)", steered.MeanOracle())

	fmt.Println("\nsteering events:")
	for _, ev := range steered.Monitor().Events() {
		if ev.Kind == "switch-strategy" || ev.Kind == "promote" || ev.Kind == "stop" {
			fmt.Printf("  spent=%4d  %-16s %s\n", ev.Spent, ev.Kind, ev.Detail)
		}
	}

	fmt.Println("\nquality curve (mean oracle q vs tasks spent), steered run:")
	series := steered.Monitor().Series("mean_oracle").Points()
	for _, p := range series {
		if int(p.X)%(budget/10) == 0 {
			fmt.Printf("  %4.0f  %s %.4f\n", p.X, bar(p.Y), p.Y)
		}
	}
}

func run(steer bool) *itag.Engine {
	world, err := itag.GenerateWorld(rng.New(10), itag.WorldConfig{NumResources: numResources})
	if err != nil {
		log.Fatal(err)
	}
	pop, err := itag.NewPopulation(rng.New(11), itag.PopulationConfig{Size: 40, UnreliableFraction: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	sim := itag.NewSimulator(world)
	platform, err := itag.NewMTurkSim(itag.WorkerIDs(pop), itag.GenerativeSource(sim, pop, 12), nil, 13)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := itag.NewEngine(itag.EngineConfig{
		Resources: world.Dataset.Resources,
		Strategy:  itag.FreeChoice{},
		Budget:    budget / 2, // first half
		Batch:     20,
		Platform:  platform,
		Seed:      14,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}

	if steer {
		// The provider reviews the half-time state: promote the five worst
		// resources, stop the five best (their budget is wasted on them).
		qs, _ := engine.OracleQualities()
		order := make([]int, len(qs))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return qs[order[a]] < qs[order[b]] })
		for _, i := range order[:5] {
			if err := engine.Promote(world.Dataset.Resources[i].ID); err != nil {
				log.Fatal(err)
			}
		}
		for _, i := range order[len(order)-5:] {
			if err := engine.StopResource(world.Dataset.Resources[i].ID); err != nil {
				log.Fatal(err)
			}
		}
		engine.SwitchStrategy(&itag.FPMU{MinPostsTarget: 0, SwitchFraction: 0.5, TotalBudget: budget / 2})
	}

	if err := engine.AddBudget(budget / 2); err != nil {
		log.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}
	return engine
}

func bar(v float64) string {
	n := int(v * 40)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
